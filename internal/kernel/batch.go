// Vectorized packet dispatch. DeliverPacket pays fixed costs per
// packet that have nothing to do with filter execution: an epoch pin,
// a telemetry span, a pool round-trip, and one labeled-counter lookup
// per filter run. DeliverPackets amortizes all of them across a packet
// vector — one pin, one span, one pooled environment, one snapshot
// load, per-filter counters accumulated locally and flushed once —
// which is where the compiled backend's per-run win stops being hidden
// behind dispatch overhead (see EXPERIMENTS.md for the measured
// combined speedup). Like DeliverPacket it takes NO lock: the filter
// set is the immutable published snapshot (table.go), already sorted
// by owner, so the whole batch sees one consistent table and the
// verdict rows come out in the same order len(pkts) DeliverPacket
// calls would produce.
package kernel

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/machine"
	"repro/internal/pktgen"
	"repro/internal/telemetry"
)

// prefetchSink keeps the software-prefetch loads in DeliverPackets
// observable so the compiler cannot eliminate them. Atomic because
// concurrent batches all store to it (the value is meaningless; only
// the store's existence matters).
var prefetchSink atomic.Uint32

// DeliverPackets runs every installed filter over each packet of the
// vector and returns, per packet, the owners that accepted it — the
// same verdicts len(pkts) DeliverPacket calls would have produced,
// under a single epoch pin and a single telemetry span
// (StageDispatchBatch). The snapshot is fixed for the whole batch: a
// filter installed or uninstalled mid-batch is either visible to
// every packet of the batch or to none. A fault in a validated filter
// aborts the batch with an error after flushing the accounting of the
// runs already done.
func (k *Kernel) DeliverPackets(pkts [][]byte) ([][]string, error) {
	tel := k.tel.Load()
	eid := k.nextEvent(tel)
	span := tel.span(telemetry.StageDispatchBatch, "", eid)
	supervised := k.brkArmed.Load() != 0
	if supervised {
		// Probe expired breakers before the snapshot load so a
		// re-admitted compiled form is visible to this whole batch.
		k.breakerTick(eid)
	}
	env := k.statePool.Get().(*packetEnv)
	defer k.statePool.Put(env)
	defer env.releasePacket()
	profiling := k.profiling.Load()

	// Pin an epoch and load the snapshot: the batch's entire view of
	// the filter set, pre-sorted by owner. The pin keeps a concurrently
	// retired snapshot (and its compiled programs) alive until the
	// batch finishes.
	rec := k.epochs.pin(int(env.shard))
	defer rec.unpin()
	t := k.table.Load()
	slots := t.slots

	// Per-filter batch state lives in pooled arrays parallel to the
	// snapshot's slots (the snapshot itself is immutable and shared):
	// cycle/accept accumulators flushed to the sharded counters once,
	// block-profile scratch flushed once, latency histograms resolved
	// once instead of per run.
	wantCompiled := Backend(k.backend.Load()) == BackendCompiled
	if cap(env.cycles) < len(slots) {
		env.cycles = make([]int64, len(slots))
		env.accepts = make([]int64, len(slots))
		env.runs = make([]int64, len(slots))
		env.bps = make([]*machine.BlockProfile, len(slots))
		env.hists = make([]*telemetry.Histogram, len(slots))
	}
	cycles := env.cycles[:len(slots)]
	accepts := env.accepts[:len(slots)]
	runs := env.runs[:len(slots)]
	bps := env.bps[:len(slots)]
	hists := env.hists[:len(slots)]
	for i := range slots {
		cycles[i] = 0
		accepts[i] = 0
		runs[i] = 0
		if profiling && slots[i].f.prof != nil && slots[i].c != nil {
			// Compiled profiling: one pooled BlockProfile accumulates
			// the whole batch; flush expands and merges it once.
			bps[i] = slots[i].f.prof.getBlockScratch(slots[i].c)
		} else {
			bps[i] = nil
		}
		hists[i] = tel.filterHist(slots[i].owner)
		if slots[i].c == nil && wantCompiled {
			// The kernel's default backend is compiled but this filter
			// has no compiled form — it will dispatch interpreted.
			k.flight(telemetry.FlightBackendFallback, slots[i].owner, "no compiled form; dispatching interpreted", eid)
		}
	}
	var totalCycles int64
	var delivered int64

	flush := func() {
		sh := &k.stats.shards[env.shard]
		sh.packets.Add(delivered)
		sh.cycles.Add(totalCycles)
		tel.packetBatch(delivered)
		for i := range slots {
			if accepts[i] != 0 {
				slots[i].f.accepts.add(int(env.shard), accepts[i])
			}
			tel.filterRunBatch(slots[i].owner, cycles[i], accepts[i])
			if bps[i] != nil {
				// One expansion + atomic merge per filter per batch;
				// the pooled environment must not pin the scratch.
				slots[i].f.prof.flushBlocks(bps[i], runs[i])
				bps[i] = nil
			}
			hists[i] = nil // don't pin histograms while pooled
		}
	}

	// Accepting (packet, filter) pairs accumulate densely as slot
	// indices in a pooled arena, with per-packet offsets recorded in
	// the pooled offset buffer; the owner strings and per-packet rows
	// are materialized once at the end. Slot indices are pointer-free,
	// so the hot loop's bookkeeping triggers no write barriers and the
	// arena recycles through the pool. Owners land in sorted order
	// because the snapshot's slots are sorted.
	if cap(env.offs) < len(pkts)+1 {
		env.offs = make([]int32, len(pkts)+1)
	}
	offs := env.offs[: len(pkts)+1 : len(pkts)+1]
	offs[0] = 0
	aidx := env.aidx[:0]

	// Software prefetch: sweep every packet's first cache line (the
	// one holding the header words filters decode) before dispatching
	// any of them. Issued back to back the misses overlap each other
	// in the memory system, so the sweep costs roughly one packet's
	// worth of DRAM latency per ~10 packets; issued one at a time from
	// inside the dispatch loop each would serialize against the filter
	// runs. The batch's header lines (64 KiB) stay cache-resident for
	// the dispatch loop below. Under profiling the sweep also touches
	// each unaligned packet's final byte: eager tail materialization
	// (below) will read that line, and overlapping its miss here keeps
	// it off the per-packet critical path.
	var sink byte
	if profiling {
		for _, p := range pkts {
			if len(p) > 0 {
				sink += p[0]
				if len(p)&7 != 0 {
					sink += p[len(p)-1]
				}
			}
		}
	} else {
		for _, p := range pkts {
			if len(p) > 0 {
				sink += p[0]
			}
		}
	}
	prefetchSink.Store(uint32(sink))

	for pi, data := range pkts {
		usePool := len(data) <= maxPooledPacket
		if usePool {
			// Zero-copy: the packet region aliases the caller's bytes
			// for the duration of this packet's runs.
			env.setPacketAlias(data)
			if profiling && env.tailSrc != nil {
				// Under profiling, materialize the tail word eagerly: a
				// tail-fault retry would attribute the aborted run's
				// retired prefix a second time, skewing the counts the
				// differential suite holds bit-exact.
				env.materializeTail()
			}
		} else {
			k.flight(telemetry.FlightOversizePacket, "", fmt.Sprintf("len=%d", len(data)), eid)
		}
		for si := range slots {
			f := slots[si].f
			var state *machine.State
			if usePool {
				if env.dirtyScratch {
					env.wipeScratch()
				}
				if slots[si].lite {
					env.resetLite(len(data))
				} else {
					env.reset(len(data))
				}
				state = &env.state
			} else {
				state = k.packetState(pktgen.Packet{Data: data})
			}
			h := hists[si]
			var t0 time.Time
			if h != nil {
				t0 = time.Now()
			}
			var res machine.Result
			var err error
			// runInstalled, unrolled so the backend branch and the
			// dirty-scratch decision stay out of the per-op path.
			if c := slots[si].c; c != nil {
				if bp := bps[si]; bp != nil {
					res, err = c.RunProfiled(state, machine.Unchecked, dispatchFuel, bp)
					runs[si]++
				} else {
					res, err = c.Run(state, machine.Unchecked, dispatchFuel)
				}
				if usePool && c.WritesMemory() {
					env.dirtyScratch = true
				}
			} else {
				res, _, err = runInstalled(f, state, profiling)
				if usePool {
					env.dirtyScratch = true
				}
			}
			if err != nil && usePool && env.tailFault(err) {
				// The filter touched the packet's unaligned final
				// word — the one piece zero-copy dispatch defers
				// copying. Materialize the tail and rerun the filter
				// from a fresh state; the rerun behaves exactly as if
				// the tail had been mapped all along.
				env.materializeTail()
				env.wipeScratch() // the aborted run may have written scratch
				env.reset(len(data))
				if c := slots[si].c; c != nil {
					res, err = c.Run(state, machine.Unchecked, dispatchFuel)
					if c.WritesMemory() {
						env.dirtyScratch = true
					}
				} else {
					res, _, err = runInstalled(f, state, profiling)
					env.dirtyScratch = true
				}
			}
			if h != nil {
				h.ObserveSinceEID(t0, eid)
			}
			if err != nil {
				kind := dispatchFaultKind(err)
				k.flight(kind, slots[si].owner, err.Error(), eid)
				k.breakerFault(slots[si].owner, kind, eid)
				flush()
				span.End(err)
				return nil, fmt.Errorf("kernel: validated filter %q faulted: %w", slots[si].owner, err)
			}
			cycles[si] += res.Cycles
			totalCycles += res.Cycles
			if res.Ret != 0 {
				aidx = append(aidx, uint16(si))
				accepts[si]++
			}
		}
		offs[pi+1] = int32(len(aidx))
		delivered++
	}
	env.aidx = aidx[:0]
	flush()
	if supervised {
		// The whole batch ran fault-free: one clean observation per
		// filter (probation progress is per delivery, not per packet).
		for si := range slots {
			k.breakerClean(slots[si].owner, eid)
		}
	}
	span.End(nil)

	names := make([]string, len(aidx))
	for i, si := range aidx {
		names[i] = slots[si].owner
	}
	accepted := make([][]string, len(pkts))
	for pi := range accepted {
		if lo, hi := offs[pi], offs[pi+1]; hi > lo {
			accepted[pi] = names[lo:hi:hi]
		}
	}
	return accepted, nil
}
