// Vectorized packet dispatch. DeliverPacket pays fixed costs per
// packet that have nothing to do with filter execution: a read-lock
// acquisition, a telemetry span, a pool round-trip, a map iteration, a
// sort of the accepted owners, and one labeled-counter lookup per
// filter run. DeliverPackets amortizes all of them across a packet
// vector — one lock, one span, one pooled environment, one sorted
// filter snapshot, per-filter counters accumulated locally and flushed
// once — which is where the compiled backend's per-run win stops being
// hidden behind dispatch overhead (see EXPERIMENTS.md for the measured
// combined speedup).
package kernel

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/machine"
	"repro/internal/pktgen"
	"repro/internal/telemetry"
)

// prefetchSink keeps the software-prefetch loads in DeliverPackets
// observable so the compiler cannot eliminate them. Atomic because
// concurrent batches all store to it (the value is meaningless; only
// the store's existence matters).
var prefetchSink atomic.Uint32

// fslot is one filter in the batch snapshot, pre-sorted by owner so
// per-packet accept lists come out sorted for free. c caches the
// filter's compiled form (nil when absent), hoisting the backend
// decision out of the per-(packet, filter) loop.
type fslot struct {
	owner string
	f     *installed
	c     *machine.Compiled
	// bp accumulates per-block profile counts for the whole batch when
	// the filter profiles on the compiled backend; the per-PC expansion
	// and atomic merge happen once per batch in flush. runs counts the
	// profiled executions fed into bp since the snapshot.
	bp   *machine.BlockProfile
	runs int64
	// hist is the filter's per-owner dispatch-latency histogram
	// (pcc_filter_run_seconds{filter=owner}), nil with no recorder.
	hist *telemetry.Histogram
	// lite: the compiled form's liveness analysis proved the filter
	// reads only the preset registers, so the cheap between-runs
	// resetLite suffices.
	lite bool
}

// DeliverPackets runs every installed filter over each packet of the
// vector and returns, per packet, the owners that accepted it — the
// same verdicts len(pkts) DeliverPacket calls would have produced,
// under a single lock acquisition and a single telemetry span
// (StageDispatchBatch). Like DeliverPacket, it holds the kernel lock
// only in read mode; a fault in a validated filter aborts the batch
// with an error after flushing the accounting of the runs already
// done.
func (k *Kernel) DeliverPackets(pkts [][]byte) ([][]string, error) {
	tel := k.tel.Load()
	span := tel.span(telemetry.StageDispatchBatch, "")
	env := k.statePool.Get().(*packetEnv)
	defer k.statePool.Put(env)
	defer env.releasePacket()
	profiling := k.profiling.Load()

	k.mu.RLock()
	defer k.mu.RUnlock()

	// Snapshot the filter table sorted once per batch instead of
	// sorting accepted owners once per packet. The snapshot and the
	// per-filter accumulators live in the pooled environment, so a
	// batch's only allocation is its result.
	wantCompiled := Backend(k.backend.Load()) == BackendCompiled
	slots := env.slots[:0]
	for owner, f := range k.filters {
		c := f.compiled
		sl := fslot{owner: owner, f: f, c: c}
		sl.lite = c != nil && c.LiveInRegs()&^presetRegs == 0
		if profiling && f.prof != nil && c != nil {
			// Compiled profiling: one pooled BlockProfile accumulates
			// the whole batch; flush expands and merges it once.
			sl.bp = f.prof.getBlockScratch(c)
		}
		sl.hist = tel.filterHist(owner)
		if c == nil && wantCompiled {
			// The kernel's default backend is compiled but this filter
			// has no compiled form — it will dispatch interpreted.
			k.flight(telemetry.FlightBackendFallback, owner, "no compiled form; dispatching interpreted")
		}
		slots = append(slots, sl)
	}
	for i := 1; i < len(slots); i++ {
		for j := i; j > 0 && slots[j].owner < slots[j-1].owner; j-- {
			slots[j], slots[j-1] = slots[j-1], slots[j]
		}
	}
	env.slots = slots

	// Per-filter accumulators, flushed to the shared counters and the
	// telemetry families once per batch.
	if cap(env.cycles) < len(slots) {
		env.cycles = make([]int64, len(slots))
		env.accepts = make([]int64, len(slots))
	}
	cycles := env.cycles[:len(slots)]
	accepts := env.accepts[:len(slots)]
	for i := range cycles {
		cycles[i] = 0
		accepts[i] = 0
	}
	var totalCycles int64
	var delivered int64

	flush := func() {
		k.stats.packets.Add(delivered)
		k.stats.extensionCycles.Add(totalCycles)
		tel.packetBatch(delivered)
		for i, sl := range slots {
			if accepts[i] != 0 {
				sl.f.accepts.Add(accepts[i])
			}
			tel.filterRunBatch(sl.owner, cycles[i], accepts[i])
			if sl.bp != nil {
				// One expansion + atomic merge per filter per batch;
				// the pooled environment must not pin the scratch.
				sl.f.prof.flushBlocks(sl.bp, sl.runs)
				slots[i].bp = nil
			}
		}
	}

	// Accepting (packet, filter) pairs accumulate densely as slot
	// indices in a pooled arena, with per-packet offsets recorded in
	// the pooled offset buffer; the owner strings and per-packet rows
	// are materialized once at the end. Slot indices are pointer-free,
	// so the hot loop's bookkeeping triggers no write barriers and the
	// arena recycles through the pool. Owners land in sorted order
	// because the slots are sorted.
	if cap(env.offs) < len(pkts)+1 {
		env.offs = make([]int32, len(pkts)+1)
	}
	offs := env.offs[: len(pkts)+1 : len(pkts)+1]
	offs[0] = 0
	aidx := env.aidx[:0]

	// Software prefetch: sweep every packet's first cache line (the
	// one holding the header words filters decode) before dispatching
	// any of them. Issued back to back the misses overlap each other
	// in the memory system, so the sweep costs roughly one packet's
	// worth of DRAM latency per ~10 packets; issued one at a time from
	// inside the dispatch loop each would serialize against the filter
	// runs. The batch's header lines (64 KiB) stay cache-resident for
	// the dispatch loop below. Under profiling the sweep also touches
	// each unaligned packet's final byte: eager tail materialization
	// (below) will read that line, and overlapping its miss here keeps
	// it off the per-packet critical path.
	var sink byte
	if profiling {
		for _, p := range pkts {
			if len(p) > 0 {
				sink += p[0]
				if len(p)&7 != 0 {
					sink += p[len(p)-1]
				}
			}
		}
	} else {
		for _, p := range pkts {
			if len(p) > 0 {
				sink += p[0]
			}
		}
	}
	prefetchSink.Store(uint32(sink))

	for pi, data := range pkts {
		usePool := len(data) <= maxPooledPacket
		if usePool {
			// Zero-copy: the packet region aliases the caller's bytes
			// for the duration of this packet's runs.
			env.setPacketAlias(data)
			if profiling && env.tailSrc != nil {
				// Under profiling, materialize the tail word eagerly: a
				// tail-fault retry would attribute the aborted run's
				// retired prefix a second time, skewing the counts the
				// differential suite holds bit-exact.
				env.materializeTail()
			}
		} else {
			k.flight(telemetry.FlightOversizePacket, "", fmt.Sprintf("len=%d", len(data)))
		}
		for si := range slots {
			f := slots[si].f
			var state *machine.State
			if usePool {
				if env.dirtyScratch {
					env.wipeScratch()
				}
				if slots[si].lite {
					env.resetLite(len(data))
				} else {
					env.reset(len(data))
				}
				state = &env.state
			} else {
				state = k.packetState(pktgen.Packet{Data: data})
			}
			h := slots[si].hist
			var t0 time.Time
			if h != nil {
				t0 = time.Now()
			}
			var res machine.Result
			var err error
			// runInstalled, unrolled so the backend branch and the
			// dirty-scratch decision stay out of the per-op path.
			if c := slots[si].c; c != nil {
				if bp := slots[si].bp; bp != nil {
					res, err = c.RunProfiled(state, machine.Unchecked, dispatchFuel, bp)
					slots[si].runs++
				} else {
					res, err = c.Run(state, machine.Unchecked, dispatchFuel)
				}
				if usePool && c.WritesMemory() {
					env.dirtyScratch = true
				}
			} else {
				res, _, err = runInstalled(f, state, profiling)
				if usePool {
					env.dirtyScratch = true
				}
			}
			if err != nil && usePool && env.tailFault(err) {
				// The filter touched the packet's unaligned final
				// word — the one piece zero-copy dispatch defers
				// copying. Materialize the tail and rerun the filter
				// from a fresh state; the rerun behaves exactly as if
				// the tail had been mapped all along.
				env.materializeTail()
				env.wipeScratch() // the aborted run may have written scratch
				env.reset(len(data))
				if c := slots[si].c; c != nil {
					res, err = c.Run(state, machine.Unchecked, dispatchFuel)
					if c.WritesMemory() {
						env.dirtyScratch = true
					}
				} else {
					res, _, err = runInstalled(f, state, profiling)
					env.dirtyScratch = true
				}
			}
			if h != nil {
				h.Observe(time.Since(t0))
			}
			if err != nil {
				k.flight(dispatchFaultKind(err), slots[si].owner, err.Error())
				flush()
				span.End(err)
				return nil, fmt.Errorf("kernel: validated filter %q faulted: %w", slots[si].owner, err)
			}
			cycles[si] += res.Cycles
			totalCycles += res.Cycles
			if res.Ret != 0 {
				aidx = append(aidx, uint16(si))
				accepts[si]++
			}
		}
		offs[pi+1] = int32(len(aidx))
		delivered++
	}
	env.aidx = aidx[:0]
	flush()
	span.End(nil)

	names := make([]string, len(aidx))
	for i, si := range aidx {
		names[i] = slots[si].owner
	}
	accepted := make([][]string, len(pkts))
	for pi := range accepted {
		if lo, hi := offs[pi], offs[pi+1]; hi > lo {
			accepted[pi] = names[lo:hi:hi]
		}
	}
	return accepted, nil
}
