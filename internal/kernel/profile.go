// Per-filter cycle profiling. With profiling enabled, every delivery
// attributes cycles per PC into the filter's shared accumulator —
// race-free under concurrent delivery because the merge is atomic and
// the attribution itself happens in pooled per-delivery scratch.
//
// Both backends profile natively. The interpreter path runs the
// profiled instantiation (machine.InterpProfiled) into a pooled
// machine.Profile. The compiled path keeps dispatching threaded code:
// machine.Compiled.RunProfiled counts basic-block completions into a
// pooled machine.BlockProfile (two plain adds per completed block, not
// per instruction) and the per-PC expansion is deferred to the merge,
// so profiling the compiled backend costs a few percent, not a fall
// back to interpretation. With profiling off, dispatch takes the exact
// pre-profiler path (one extra atomic.Bool load per delivery), keeping
// the nil-recorder DeliverPacket at zero allocations per packet.
package kernel

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/alpha"
	"repro/internal/machine"
	"repro/internal/pprofenc"
)

// filterProfile is the shared accumulator for one installed filter:
// per-PC cycles and visits as atomics (merged into by concurrent
// deliveries), plus a pool of scratch machine.Profiles sized to the
// filter's program.
type filterProfile struct {
	prog   []alpha.Instr
	cycles []atomic.Int64
	visits []atomic.Int64
	runs   atomic.Int64
	// scratch pools per-delivery machine.Profiles (interpreter path);
	// blockScratch pools machine.BlockProfiles (compiled path). A
	// pooled BlockProfile is bound to one *machine.Compiled, so users
	// validate with BlockProfile.For and rebuild when the filter was
	// retrofitted to a different compiled form.
	scratch      sync.Pool
	blockScratch sync.Pool
}

func newFilterProfile(prog []alpha.Instr) *filterProfile {
	fp := &filterProfile{
		prog:   prog,
		cycles: make([]atomic.Int64, len(prog)),
		visits: make([]atomic.Int64, len(prog)),
	}
	fp.scratch.New = func() any { return machine.NewProfile(len(prog)) }
	return fp
}

// run executes prog on state through the profiled interpreter and
// folds the attribution into the accumulator.
func (fp *filterProfile) run(state *machine.State, fuel int) (machine.Result, error) {
	p := fp.scratch.Get().(*machine.Profile)
	res, err := machine.InterpProfiled(fp.prog, state, machine.Unchecked, &machine.DEC21064, fuel, p)
	fp.merge(p, 1)
	p.Reset()
	fp.scratch.Put(p)
	return res, err
}

// merge folds a scratch profile's nonzero entries into the atomic
// accumulator and counts runs completed runs.
func (fp *filterProfile) merge(p *machine.Profile, runs int64) {
	for i := range p.Cycles {
		if c := p.Cycles[i]; c != 0 {
			fp.cycles[i].Add(c)
		}
		if v := p.Visits[i]; v != 0 {
			fp.visits[i].Add(v)
		}
	}
	fp.runs.Add(runs)
}

// getBlockScratch returns a pooled BlockProfile bound to c, building a
// fresh one when the pool is empty or holds a profile for a stale
// compiled form (the filter was retrofitted by SetBackend since the
// profile was pooled).
func (fp *filterProfile) getBlockScratch(c *machine.Compiled) *machine.BlockProfile {
	if bp, _ := fp.blockScratch.Get().(*machine.BlockProfile); bp != nil && bp.For(c) {
		return bp
	}
	return machine.NewBlockProfile(c)
}

// flushBlocks expands a BlockProfile's per-block counts to per-PC
// attribution, merges it into the accumulator, and returns the scratch
// to the pool. runs is how many RunProfiled calls fed bp since the
// last flush (faulted runs count, matching the interpreter path's
// unconditional runs increment).
func (fp *filterProfile) flushBlocks(bp *machine.BlockProfile, runs int64) {
	p := fp.scratch.Get().(*machine.Profile)
	bp.AddTo(p)
	fp.merge(p, runs)
	p.Reset()
	fp.scratch.Put(p)
	bp.Reset()
	fp.blockScratch.Put(bp)
}

// runCompiled executes the threaded-code form with per-block profiling
// and folds the attribution into the accumulator — the single-delivery
// analogue of run. Batch dispatch instead keeps one BlockProfile per
// filter for the whole batch and flushes once (batch.go).
func (fp *filterProfile) runCompiled(c *machine.Compiled, state *machine.State, fuel int) (machine.Result, error) {
	bp := fp.getBlockScratch(c)
	res, err := c.RunProfiled(state, machine.Unchecked, fuel, bp)
	fp.flushBlocks(bp, 1)
	return res, err
}

// snapshot captures the accumulator as a plain machine.Profile.
func (fp *filterProfile) snapshot() *machine.Profile {
	p := machine.NewProfile(len(fp.prog))
	for i := range fp.cycles {
		p.Cycles[i] = fp.cycles[i].Load()
		p.Visits[i] = fp.visits[i].Load()
	}
	p.Runs = fp.runs.Load()
	return p
}

// SetProfiling enables or disables cycle attribution on the dispatch
// path. Enabling attaches an accumulator to every installed filter
// (and to filters installed afterwards); accumulated counts survive
// toggling off and back on, but not reinstalling the filter.
// Installed filters are immutable once published, so attaching is
// copy-on-write: filters lacking an accumulator are replaced by
// clones that carry one (sharing the accept counter), published as a
// new snapshot, with the originals retired past in-flight deliveries.
func (k *Kernel) SetProfiling(on bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if on {
		t := k.table.Load()
		nt, replaced := t.mapped(func(owner string, f *installed) *installed {
			if f.prof != nil {
				return f
			}
			nf := *f
			nf.prof = newFilterProfile(f.ext.Prog)
			return &nf
		})
		if nt != t {
			k.publishLocked(nt, replaced...)
		}
	}
	old := k.profiling.Swap(on)
	k.configChange("profiling", fmt.Sprintf("%t", old), fmt.Sprintf("%t", on))
}

// Profiling reports whether cycle attribution is enabled.
func (k *Kernel) Profiling() bool { return k.profiling.Load() }

// FilterProfileSnapshot is a point-in-time copy of one filter's cycle
// attribution. Each counter is read atomically; under concurrent
// delivery the snapshot is approximate the same way Stats is.
type FilterProfileSnapshot struct {
	Owner   string
	Prog    []alpha.Instr
	Profile *machine.Profile
}

// TotalCycles sums the attributed cycles.
func (s *FilterProfileSnapshot) TotalCycles() int64 { return s.Profile.TotalCycles() }

// AnnotatedListing renders the filter's disassembly with cycles and
// visit counts beside each instruction plus the basic-block rollup.
func (s *FilterProfileSnapshot) AnnotatedListing() string {
	return fmt.Sprintf("filter %q: %d runs, %d cycles attributed\n%s",
		s.Owner, s.Profile.Runs, s.Profile.TotalCycles(),
		s.Profile.AnnotatedListing(s.Prog))
}

// FilterProfile returns the cycle profile of one installed filter, or
// false if the owner has no filter or profiling was never enabled for
// it. Lock-free: it reads the published snapshot under an epoch pin
// (the profiling merge never waits on installs, and vice versa).
func (k *Kernel) FilterProfile(owner string) (*FilterProfileSnapshot, bool) {
	rec := k.epochs.pin(0)
	t := k.table.Load()
	var fp *filterProfile
	if i, ok := t.index[owner]; ok {
		fp = t.slots[i].f.prof
	}
	rec.unpin()
	if fp == nil {
		return nil, false
	}
	return &FilterProfileSnapshot{Owner: owner, Prog: fp.prog, Profile: fp.snapshot()}, true
}

// FilterProfiles returns the profiles of all profiled filters, sorted
// by owner (the snapshot's slot order). Lock-free like FilterProfile.
func (k *Kernel) FilterProfiles() []*FilterProfileSnapshot {
	rec := k.epochs.pin(0)
	t := k.table.Load()
	type prof struct {
		owner string
		fp    *filterProfile
	}
	profs := make([]prof, 0, len(t.slots))
	for i := range t.slots {
		if fp := t.slots[i].f.prof; fp != nil {
			profs = append(profs, prof{t.slots[i].owner, fp})
		}
	}
	rec.unpin()
	out := make([]*FilterProfileSnapshot, 0, len(profs))
	for _, p := range profs {
		out = append(out, &FilterProfileSnapshot{Owner: p.owner, Prog: p.fp.prog, Profile: p.fp.snapshot()})
	}
	return out
}

// WriteFilterProfile exports the cycle profiles of every profiled
// filter as one pprof-compatible profile: each executed PC becomes a
// leaf frame carrying the disassembled instruction, stacked under a
// root frame per filter, with visit and cycle sample values (cycles
// last, so it is pprof's default sample index). `go tool pprof -top`
// then ranks simulated instructions by cycles, and the flamegraph
// view nests them under their filter.
func (k *Kernel) WriteFilterProfile(w io.Writer) error {
	snaps := k.FilterProfiles()
	b := pprofenc.NewBuilder([2]string{"visits", "count"}, [2]string{"cycles", "count"})
	b.PeriodType = [2]string{"cycles", "count"}
	b.Period = 1
	b.Comments = append(b.Comments,
		"simulated DEC 21064 cycles attributed per Alpha instruction (repro PCC kernel)")
	for _, s := range snaps {
		root := pprofenc.Frame{Function: s.Owner, File: s.Owner}
		for pc, ins := range s.Prog {
			if pc >= len(s.Profile.Visits) || s.Profile.Visits[pc] == 0 {
				continue
			}
			leaf := pprofenc.Frame{
				Function: fmt.Sprintf("%s@pc%d: %s", s.Owner, pc, ins),
				File:     s.Owner,
				Line:     int64(pc + 1),
			}
			if err := b.AddSample([]pprofenc.Frame{leaf, root},
				[]int64{s.Profile.Visits[pc], s.Profile.Cycles[pc]}); err != nil {
				return err
			}
		}
	}
	return b.Write(w)
}
