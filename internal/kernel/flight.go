// Flight-recorder plumbing: the kernel-side hooks feeding the
// telemetry.FlightRecorder anomaly ring. Metrics say how often;
// the audit log says what was decided at install time; the flight
// recorder says what went wrong on the dispatch path just now, with
// owner identity and wall timestamps. Recording is lock-free and the
// happy path never calls it, so it is safe to leave attached in
// production.
package kernel

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/machine"
	"repro/internal/telemetry"
)

// SetFlightRecorder attaches a dispatch flight recorder to the kernel
// (nil detaches). The swap is atomic and safe while deliveries are in
// flight; anomalies observe either the old or the new ring.
func (k *Kernel) SetFlightRecorder(fr *telemetry.FlightRecorder) {
	k.flightRec.Store(fr)
}

// FlightRecorder returns the attached flight recorder, or nil.
func (k *Kernel) FlightRecorder() *telemetry.FlightRecorder {
	return k.flightRec.Load()
}

// flight records one anomaly, tagged with the operation's correlation
// EventID; a nil recorder makes it a no-op.
func (k *Kernel) flight(kind, owner, detail string, eid uint64) {
	k.flightRec.Load().RecordEvent(kind, owner, detail, eid)
}

// dispatchFaultKind classifies a dispatch-path execution error into a
// flight-event kind: fuel exhaustion (the budget caught a runaway),
// memory fault, or any other fault.
func dispatchFaultKind(err error) string {
	if errors.Is(err, machine.ErrFuel) {
		return telemetry.FlightFuelExhausted
	}
	var mf *machine.MemFault
	if errors.As(err, &mf) {
		return telemetry.FlightMemoryFault
	}
	return telemetry.FlightDispatchFault
}

// configChange records a kernel posture change in both durable sinks:
// a structured audit line (the forensic record of who ran with what
// settings) and a flight event (the "what changed just before the
// page" timeline). Same-value sets are still recorded — an operator
// re-asserting a setting is itself a fact worth keeping.
func (k *Kernel) configChange(setting, oldVal, newVal string) {
	tel := k.tel.Load()
	eid := k.nextEvent(tel)
	start := time.Now()
	k.audit.Load().configChange(setting, oldVal, newVal, eid)
	k.flight(telemetry.FlightConfigChange, "", fmt.Sprintf("%s: %s -> %s", setting, oldVal, newVal), eid)
	if tel != nil {
		// A config span puts the EventID in the span ring too, so one ID
		// joins all three streams for posture changes.
		tel.rec.RecordSpan(telemetry.StageConfig, setting, 0, eid, start, time.Since(start), nil)
	}
}
