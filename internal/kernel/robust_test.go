package kernel

import (
	"context"
	"errors"
	"testing"
	"time"

	pcc "repro"
	"repro/internal/filters"
	"repro/internal/policy"
	"repro/internal/telemetry"
)

// goodBinary certifies one valid paper filter.
func goodBinary(t *testing.T) []byte {
	t.Helper()
	cert, err := pcc.Certify(filters.SrcFilter1, policy.PacketFilter(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return cert.Binary
}

// rejectCount reads the pcc_rejects_total sample for one reason.
func rejectCount(k *Kernel, reason string) int64 {
	return k.Recorder().LabeledCounter(MetricRejects, "reason", reason).Value()
}

// TestInstallFilterCtxExpiredContext: an expired context rejects the
// install without proof checking, classifies it as "deadline", and the
// books balance — no phantom install, validations == rejections.
func TestInstallFilterCtxExpiredContext(t *testing.T) {
	bin := goodBinary(t)
	k := New()
	k.SetRecorder(telemetry.New())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := k.InstallFilterCtx(ctx, "late", bin)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled in chain, got %v", err)
	}
	if n := len(k.Owners()); n != 0 {
		t.Fatalf("phantom install: %d filters", n)
	}
	st := k.Stats()
	if st.Validations != 1 || st.Rejections != 1 {
		t.Fatalf("books off: validations=%d rejections=%d", st.Validations, st.Rejections)
	}
	if got := rejectCount(k, "deadline"); got != 1 {
		t.Fatalf("pcc_rejects_total{reason=deadline} = %d, want 1", got)
	}
	// A canceled install must not have been served from (or populated)
	// the cache in a way that commits it: retrying with a live context
	// succeeds normally.
	if err := k.InstallFilterCtx(context.Background(), "late", bin); err != nil {
		t.Fatalf("retry after cancel failed: %v", err)
	}
}

// TestAdmissionShedding: with a full admission gate the install sheds
// immediately with a typed retry-after error, classified "queue_full";
// once a slot frees, the same install goes through.
func TestAdmissionShedding(t *testing.T) {
	bin := goodBinary(t)
	k := New()
	k.SetRecorder(telemetry.New())
	k.SetAdmissionLimit(1)
	gate := k.admit.Load()
	if !gate.tryAcquire() { // occupy the only slot
		t.Fatal("fresh gate full")
	}
	err := k.InstallFilterCtx(context.Background(), "burst", bin)
	var qe *QueueFullError
	if !errors.As(err, &qe) {
		t.Fatalf("want QueueFullError, got %v", err)
	}
	if qe.RetryAfter <= 0 || qe.Limit != 1 {
		t.Fatalf("unhelpful shed error: %+v", qe)
	}
	if got := rejectCount(k, "queue_full"); got != 1 {
		t.Fatalf("pcc_rejects_total{reason=queue_full} = %d, want 1", got)
	}
	st := k.Stats()
	if st.Validations != st.Rejections {
		t.Fatalf("shed install not accounted: %+v", st)
	}
	gate.release()
	if err := k.InstallFilterCtx(context.Background(), "burst", bin); err != nil {
		t.Fatalf("install after slot freed: %v", err)
	}
	k.SetAdmissionLimit(0) // unbounded again
	if k.admit.Load() != nil {
		t.Fatal("SetAdmissionLimit(0) left a gate")
	}
}

// TestQuarantineLifecycle: repeated rejections embargo the producer
// with backoff; during the embargo even a valid binary is refused
// without being examined; the embargo lifts on its own and a success
// clears the strike record.
func TestQuarantineLifecycle(t *testing.T) {
	bin := goodBinary(t)
	k := New()
	k.SetRecorder(telemetry.New())
	k.SetQuarantine(QuarantineConfig{Threshold: 2, Base: 30 * time.Millisecond, Max: 200 * time.Millisecond})

	garbage := []byte("PCC1 this is not a binary")
	for i := 0; i < 2; i++ {
		if err := k.InstallFilter("mal", garbage); err == nil {
			t.Fatal("garbage installed")
		}
	}
	// Second strike hit the threshold: owner embargoed, gauge up.
	if _, ok := k.Quarantined()["mal"]; !ok {
		t.Fatal("owner not quarantined after threshold strikes")
	}
	if got := k.Recorder().Gauge(MetricQuarantineGauge).Value(); got != 1 {
		t.Fatalf("pcc_quarantined_owners = %d, want 1", got)
	}
	// A valid binary from the embargoed owner is refused up front.
	err := k.InstallFilter("mal", bin)
	var qerr *QuarantineError
	if !errors.As(err, &qerr) {
		t.Fatalf("want QuarantineError, got %v", err)
	}
	if qerr.Owner != "mal" || qerr.Strikes < 2 {
		t.Fatalf("unhelpful embargo error: %+v", qerr)
	}
	if got := rejectCount(k, "quarantine"); got != 1 {
		t.Fatalf("pcc_rejects_total{reason=quarantine} = %d, want 1", got)
	}
	// Another owner is unaffected.
	if err := k.InstallFilter("good", bin); err != nil {
		t.Fatalf("unrelated owner embargoed: %v", err)
	}
	// The embargo lifts on its own; then a success clears the record.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err = k.InstallFilter("mal", bin); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("embargo never lifted: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if q := k.Quarantined(); len(q) != 0 {
		t.Fatalf("successful install left quarantine records: %v", q)
	}
	if got := k.Recorder().Gauge(MetricQuarantineGauge).Value(); got != 0 {
		t.Fatalf("pcc_quarantined_owners = %d after recovery, want 0", got)
	}
	// Disabling quarantine clears state.
	k.SetQuarantine(QuarantineConfig{})
	if k.quarCfg.Load() != nil {
		t.Fatal("SetQuarantine(zero) left a config")
	}
}

// TestQuarantineBackoffDoubles: each strike past the threshold doubles
// the embargo up to Max.
func TestQuarantineBackoffDoubles(t *testing.T) {
	cfg := &QuarantineConfig{Threshold: 3, Base: 10 * time.Millisecond, Max: 45 * time.Millisecond}
	for _, tc := range []struct {
		strikes int
		want    time.Duration
	}{
		{3, 10 * time.Millisecond},
		{4, 20 * time.Millisecond},
		{5, 40 * time.Millisecond},
		{6, 45 * time.Millisecond}, // capped
		{20, 45 * time.Millisecond},
	} {
		if got := cfg.backoff(tc.strikes); got != tc.want {
			t.Fatalf("backoff(%d) = %v, want %v", tc.strikes, got, tc.want)
		}
	}
}

// TestKernelLimitsApply: SetLimits flows into every install's
// validation; a starved step budget turns a valid binary into a
// "limit" rejection, and restoring the defaults accepts it again.
func TestKernelLimitsApply(t *testing.T) {
	bin := goodBinary(t)
	k := New()
	k.SetRecorder(telemetry.New())
	lim := pcc.DefaultLimits()
	lim.MaxCheckSteps = 5
	k.SetLimits(lim)
	err := k.InstallFilter("starved", bin)
	if !errors.Is(err, pcc.ErrResourceLimit) {
		t.Fatalf("want ErrResourceLimit, got %v", err)
	}
	if got := rejectCount(k, "limit"); got != 1 {
		t.Fatalf("pcc_rejects_total{reason=limit} = %d, want 1", got)
	}
	k.SetLimits(pcc.DefaultLimits())
	if err := k.InstallFilter("starved", bin); err != nil {
		t.Fatalf("default limits rejected a paper filter: %v", err)
	}
	if got := k.Limits(); got.MaxCheckSteps != pcc.DefaultLimits().MaxCheckSteps {
		t.Fatalf("Limits() = %+v", got)
	}
}

// TestCycleBudgetClassifiedAsLimit: the install-time WCET budget is
// part of the same resource-limit vocabulary as the validation
// budgets.
func TestCycleBudgetClassifiedAsLimit(t *testing.T) {
	bin := goodBinary(t)
	k := New()
	k.SetRecorder(telemetry.New())
	k.SetCycleBudget(1) // nothing fits in one cycle
	err := k.InstallFilter("over", bin)
	if !errors.Is(err, pcc.ErrResourceLimit) {
		t.Fatalf("budget rejection not a resource limit: %v", err)
	}
	var rle *pcc.ResourceLimitError
	if !errors.As(err, &rle) || rle.Axis != "cycle_budget" {
		t.Fatalf("want cycle_budget axis, got %v", err)
	}
	if got := rejectCount(k, "limit"); got != 1 {
		t.Fatalf("pcc_rejects_total{reason=limit} = %d, want 1", got)
	}
}

// TestBatchCtxCanceledDrains: a batch launched with an already-
// canceled context produces one deadline-classed rejection per
// request, installs nothing, and the accounting reconciles.
func TestBatchCtxCanceledDrains(t *testing.T) {
	bin := goodBinary(t)
	k := New()
	k.SetRecorder(telemetry.New())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	reqs := make([]InstallRequest, 8)
	for i := range reqs {
		reqs[i] = InstallRequest{Owner: "o", Binary: bin}
	}
	errs := k.InstallFilterBatchCtx(ctx, reqs)
	for i, err := range errs {
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("errs[%d] = %v, want Canceled", i, err)
		}
	}
	if n := len(k.Owners()); n != 0 {
		t.Fatalf("canceled batch installed %d filters", n)
	}
	st := k.Stats()
	if st.Validations != len(reqs) || st.Rejections != len(reqs) {
		t.Fatalf("books off: %+v", st)
	}
	if got := rejectCount(k, "deadline"); got != int64(len(reqs)) {
		t.Fatalf("pcc_rejects_total{reason=deadline} = %d, want %d", got, len(reqs))
	}
}
