package kernel

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	pcc "repro"
	"repro/internal/filters"
	"repro/internal/logic"
	"repro/internal/pktgen"
	"repro/internal/policy"
)

func certFilter(t *testing.T, k *Kernel, f filters.Filter) []byte {
	t.Helper()
	cert, err := pcc.Certify(filters.Source(f), k.FilterPolicy(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return cert.Binary
}

func TestInstallAndDispatch(t *testing.T) {
	k := New()
	for _, f := range filters.All {
		owner := fmt.Sprintf("proc-%d", f)
		if err := k.InstallFilter(owner, certFilter(t, k, f)); err != nil {
			t.Fatal(err)
		}
	}
	if got := k.Owners(); len(got) != 4 {
		t.Fatalf("owners = %v", got)
	}

	pkts := pktgen.Generate(5000, pktgen.Config{Seed: 41})
	wantAccepts := map[string]int{}
	for _, p := range pkts {
		accepted, err := k.DeliverPacket(p)
		if err != nil {
			t.Fatal(err)
		}
		got := map[string]bool{}
		for _, o := range accepted {
			got[o] = true
		}
		for _, f := range filters.All {
			owner := fmt.Sprintf("proc-%d", f)
			want := filters.Reference(f, p.Data)
			if got[owner] != want {
				t.Fatalf("owner %s: accept=%v want %v", owner, got[owner], want)
			}
			if want {
				wantAccepts[owner]++
			}
		}
	}
	accepts := k.Accepts()
	for o, n := range wantAccepts {
		if accepts[o] != n {
			t.Errorf("accepts[%s] = %d, want %d", o, accepts[o], n)
		}
	}
	st := k.Stats()
	if st.Packets != len(pkts) || st.Validations != 4 || st.Rejections != 0 {
		t.Errorf("stats: %+v", st)
	}
	if st.ExtensionCycles == 0 || st.ValidationMicros == 0 {
		t.Errorf("missing accounting: %+v", st)
	}
}

func TestKernelRejectsBadBinaries(t *testing.T) {
	k := New()
	if err := k.InstallFilter("evil", []byte("not a pcc binary")); err == nil {
		t.Fatal("garbage installed")
	}
	// A well-formed binary certified for a different policy.
	cert, err := pcc.Certify(`
        ADDQ  r0, 8, r1
        LDQ   r0, 8(r0)
        LDQ   r2, -8(r1)
        ADDQ  r0, 1, r0
        BEQ   r2, L1
        STQ   r0, 0(r1)
L1:     RET
	`, pcc.ResourceAccessPolicy(), nil)
	if err != nil {
		t.Fatal(err)
	}
	err = k.InstallFilter("confused", cert.Binary)
	if err == nil || !strings.Contains(err.Error(), "rejected") {
		t.Fatalf("cross-policy binary installed: %v", err)
	}
	if st := k.Stats(); st.Rejections != 2 {
		t.Errorf("rejections = %d, want 2", st.Rejections)
	}
	if len(k.Owners()) != 0 {
		t.Error("rejected binaries left installed filters behind")
	}
}

func TestUninstall(t *testing.T) {
	k := New()
	if err := k.InstallFilter("a", certFilter(t, k, filters.Filter1)); err != nil {
		t.Fatal(err)
	}
	k.UninstallFilter("a")
	if len(k.Owners()) != 0 {
		t.Fatal("filter still installed")
	}
	accepted, err := k.DeliverPacket(pktgen.Generate(1, pktgen.Config{Seed: 1})[0])
	if err != nil || len(accepted) != 0 {
		t.Fatalf("accepted=%v err=%v", accepted, err)
	}
}

func TestResourceHandlers(t *testing.T) {
	k := New()
	cert, err := pcc.Certify(`
        ADDQ  r0, 8, r1
        LDQ   r0, 8(r0)
        LDQ   r2, -8(r1)
        ADDQ  r0, 1, r0
        BEQ   r2, L1
        STQ   r0, 0(r1)
L1:     RET
	`, k.ResourcePolicy(), nil)
	if err != nil {
		t.Fatal(err)
	}

	k.CreateTable(1, 1, 10) // writable entry
	k.CreateTable(2, 0, 20) // read-only entry
	for pid := 1; pid <= 2; pid++ {
		if err := k.InstallHandler(pid, cert.Binary); err != nil {
			t.Fatal(err)
		}
		if err := k.InvokeHandler(pid); err != nil {
			t.Fatal(err)
		}
	}
	if _, data, _ := k.Table(1); data != 11 {
		t.Errorf("pid 1 data = %d, want 11", data)
	}
	if _, data, _ := k.Table(2); data != 20 {
		t.Errorf("pid 2 data = %d, want 20 (read-only)", data)
	}

	if err := k.InvokeHandler(99); err == nil {
		t.Error("invoking a missing handler succeeded")
	}
	if _, _, ok := k.Table(99); ok {
		t.Error("phantom table")
	}
}

func TestConcurrentDelivery(t *testing.T) {
	k := New()
	if err := k.InstallFilter("p", certFilter(t, k, filters.Filter1)); err != nil {
		t.Fatal(err)
	}
	pkts := pktgen.Generate(200, pktgen.Config{Seed: 43})
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, p := range pkts {
				if _, err := k.DeliverPacket(p); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := k.Stats(); st.Packets != 8*len(pkts) {
		t.Errorf("packets = %d", st.Packets)
	}
}

func TestCycleBudgetEnforced(t *testing.T) {
	k := New()
	k.SetCycleBudget(40)
	// Filter 1 is tiny and fits.
	if err := k.InstallFilter("small", certFilter(t, k, filters.Filter1)); err != nil {
		t.Fatalf("small filter rejected: %v", err)
	}
	// Filter 3 is far over a 40-cycle budget.
	err := k.InstallFilter("big", certFilter(t, k, filters.Filter3))
	if err == nil || !strings.Contains(err.Error(), "cycle budget") {
		t.Fatalf("expensive filter installed: %v", err)
	}
	if st := k.Stats(); st.Rejections != 1 {
		t.Errorf("rejections = %d", st.Rejections)
	}
	// Without a budget it installs fine.
	k.SetCycleBudget(0)
	if err := k.InstallFilter("big", certFilter(t, k, filters.Filter3)); err != nil {
		t.Fatal(err)
	}
}

func TestNegotiatedPolicyInstall(t *testing.T) {
	k := New()
	weak := &policy.Policy{
		Name: "header-only/v1",
		Pre: logic.MustParsePred(
			"64 <= r2 /\\ (ALL i. (i < r2 /\\ (i & 7) = 0) => rd(r1 + i))"),
		Post: logic.True,
	}
	// A binary certified under the weak policy is refused before
	// negotiation...
	cert, err := pcc.Certify(filters.Source(filters.Filter1), weak, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.InstallFilter("early", cert.Binary); err == nil {
		t.Fatal("un-negotiated policy accepted")
	}
	// ...and accepted after the kernel proves the proposal is covered.
	if err := k.NegotiateFilterPolicy(weak); err != nil {
		t.Fatalf("negotiation failed: %v", err)
	}
	if err := k.InstallFilter("late", cert.Binary); err != nil {
		t.Fatalf("negotiated install failed: %v", err)
	}
	// A greedy proposal is refused outright.
	greedy := &policy.Policy{Name: "greedy/v1",
		Pre: logic.MustParsePred("wr(r1)"), Post: logic.True}
	if err := k.NegotiateFilterPolicy(greedy); err == nil {
		t.Fatal("greedy policy negotiated")
	}
}
