package kernel

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/filters"
	"repro/internal/machine"
	"repro/internal/pktgen"
	"repro/internal/telemetry"
)

func installPaperFilters(t *testing.T, k *Kernel) []string {
	t.Helper()
	owners := make([]string, 0, len(filters.All))
	for _, f := range filters.All {
		owner := fmt.Sprintf("proc-%d", f)
		if err := k.InstallFilter(owner, certFilter(t, k, f)); err != nil {
			t.Fatal(err)
		}
		owners = append(owners, owner)
	}
	return owners
}

// TestBackendDifferentialDispatch is the kernel half of the
// backend-differential suite: two kernels with the same filters, one
// interpreted and one compiled, must emit identical verdicts, accept
// counters, extension-cycle totals, and per-filter telemetry over a
// generated trace — through single-packet and vectorized dispatch.
func TestBackendDifferentialDispatch(t *testing.T) {
	ki, kc := New(), New()
	if err := kc.SetBackend(BackendCompiled); err != nil {
		t.Fatal(err)
	}
	ri, rc := telemetry.New(), telemetry.New()
	ki.SetRecorder(ri)
	kc.SetRecorder(rc)
	installPaperFilters(t, ki)
	installPaperFilters(t, kc)

	pkts := pktgen.Generate(3000, pktgen.Config{Seed: 1996})
	for i, p := range pkts {
		ai, err := ki.DeliverPacket(p)
		if err != nil {
			t.Fatal(err)
		}
		ac, err := kc.DeliverPacket(p)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ai, ac) {
			t.Fatalf("packet %d: verdicts diverge: interp=%v compiled=%v", i, ai, ac)
		}
	}
	si, sc := ki.Stats(), kc.Stats()
	if si.Packets != sc.Packets || si.ExtensionCycles != sc.ExtensionCycles {
		t.Fatalf("stats diverge: interp=%+v compiled=%+v", si, sc)
	}
	if !reflect.DeepEqual(ki.Accepts(), kc.Accepts()) {
		t.Fatalf("accept counters diverge: %v vs %v", ki.Accepts(), kc.Accepts())
	}
}

// TestDeliverPacketsMatchesSingleDispatch pins the vectorized path to
// the single-packet path on both backends: same verdicts, same
// counters, for the same trace.
func TestDeliverPacketsMatchesSingleDispatch(t *testing.T) {
	for _, be := range []Backend{BackendInterp, BackendCompiled} {
		t.Run(be.String(), func(t *testing.T) {
			ks, kb := New(), New()
			for _, k := range []*Kernel{ks, kb} {
				if err := k.SetBackend(be); err != nil {
					t.Fatal(err)
				}
			}
			rec := telemetry.New()
			kb.SetRecorder(rec)
			installPaperFilters(t, ks)
			installPaperFilters(t, kb)

			pkts := pktgen.Generate(2000, pktgen.Config{Seed: 7})
			raw := make([][]byte, len(pkts))
			single := make([][]string, len(pkts))
			for i, p := range pkts {
				raw[i] = p.Data
				acc, err := ks.DeliverPacket(p)
				if err != nil {
					t.Fatal(err)
				}
				single[i] = acc
			}
			batch, err := kb.DeliverPackets(raw)
			if err != nil {
				t.Fatal(err)
			}
			if len(batch) != len(single) {
				t.Fatalf("batch returned %d verdicts for %d packets", len(batch), len(single))
			}
			for i := range single {
				if !reflect.DeepEqual(single[i], batch[i]) {
					t.Fatalf("packet %d: single=%v batch=%v", i, single[i], batch[i])
				}
			}
			ss, sb := ks.Stats(), kb.Stats()
			if ss.Packets != sb.Packets || ss.ExtensionCycles != sb.ExtensionCycles {
				t.Fatalf("stats diverge: single=%+v batch=%+v", ss, sb)
			}
			if !reflect.DeepEqual(ks.Accepts(), kb.Accepts()) {
				t.Fatalf("accepts diverge: %v vs %v", ks.Accepts(), kb.Accepts())
			}
			// The batch path must feed the same telemetry families.
			var buf bytes.Buffer
			if err := rec.WritePrometheus(&buf); err != nil {
				t.Fatal(err)
			}
			page := buf.String()
			for _, want := range []string{MetricPackets, MetricFilterCycles, MetricFilterAccepts} {
				if !strings.Contains(page, want) {
					t.Fatalf("exposition missing %s after batch dispatch", want)
				}
			}
			if !strings.Contains(page, telemetry.StageDispatchBatch) {
				t.Fatal("exposition missing the dispatch_batch stage histogram")
			}
		})
	}
}

// TestSetBackendRetrofit flips the backend with filters installed and
// checks each direction takes effect on the live table.
func TestSetBackendRetrofit(t *testing.T) {
	k := New()
	installPaperFilters(t, k)
	compiledCount := func() int {
		n := 0
		tb := k.table.Load()
		for i := range tb.slots {
			if tb.slots[i].c != nil {
				n++
			}
		}
		return n
	}
	if got := compiledCount(); got != 0 {
		t.Fatalf("fresh interp kernel has %d compiled filters", got)
	}
	if err := k.SetBackend(BackendCompiled); err != nil {
		t.Fatal(err)
	}
	if got := compiledCount(); got != len(filters.All) {
		t.Fatalf("after SetBackend(compiled): %d compiled filters, want %d", got, len(filters.All))
	}
	if k.Backend() != BackendCompiled {
		t.Fatalf("Backend() = %v", k.Backend())
	}
	// New installs under the compiled default come up compiled.
	if err := k.InstallFilter("late", certFilter(t, k, filters.Filter1)); err != nil {
		t.Fatal(err)
	}
	if got := compiledCount(); got != len(filters.All)+1 {
		t.Fatalf("late install not compiled: %d", got)
	}
	// Rollback drops every compiled form.
	if err := k.SetBackend(BackendInterp); err != nil {
		t.Fatal(err)
	}
	if got := compiledCount(); got != 0 {
		t.Fatalf("after rollback: %d compiled filters", got)
	}
	if err := k.SetBackend(Backend(99)); err == nil {
		t.Fatal("SetBackend accepted an unknown backend")
	}
}

// TestInstallFilterWithBackend pins the per-install override against
// the kernel default.
func TestInstallFilterWithBackend(t *testing.T) {
	k := New()
	ctx := context.Background()
	if err := k.InstallFilterWithBackend(ctx, "c", certFilter(t, k, filters.Filter1), BackendCompiled); err != nil {
		t.Fatal(err)
	}
	if err := k.InstallFilterWithBackend(ctx, "i", certFilter(t, k, filters.Filter2), BackendInterp); err != nil {
		t.Fatal(err)
	}
	tb := k.table.Load()
	cc, ci := tb.slots[tb.index["c"]].c, tb.slots[tb.index["i"]].c
	if cc == nil {
		t.Fatal("per-install compiled override did not compile")
	}
	if ci != nil {
		t.Fatal("per-install interp override still compiled")
	}
	if err := k.InstallFilterWithBackend(ctx, "x", certFilter(t, k, filters.Filter3), Backend(7)); err == nil {
		t.Fatal("unknown backend accepted")
	}
	// The compiled form is memoized on the proof-cache slot: a second
	// compiled install of the same binary reuses it.
	bin := certFilter(t, k, filters.Filter4)
	if err := k.InstallFilterWithBackend(ctx, "a", bin, BackendCompiled); err != nil {
		t.Fatal(err)
	}
	if err := k.InstallFilterWithBackend(ctx, "b", bin, BackendCompiled); err != nil {
		t.Fatal(err)
	}
	tb = k.table.Load()
	ca, cb := tb.slots[tb.index["a"]].c, tb.slots[tb.index["b"]].c
	if ca == nil || ca != cb {
		t.Fatal("compiled form not shared via the proof-cache slot")
	}
}

// TestConcurrentBackendToggleDispatch hammers install, backend
// toggling, single dispatch, and batch dispatch concurrently; under
// -race this is the suite's linearizability check for the new table
// field. Every verdict must still match the reference oracle.
func TestConcurrentBackendToggleDispatch(t *testing.T) {
	k := New()
	installPaperFilters(t, k)
	bins := make(map[string][]byte)
	for _, f := range filters.All {
		bins[fmt.Sprintf("proc-%d", f)] = certFilter(t, k, f)
	}
	pkts := pktgen.Generate(400, pktgen.Config{Seed: 11})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	fail := make(chan error, 16)

	wg.Add(1)
	go func() { // backend toggler
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := k.SetBackend(Backend(i % 2)); err != nil {
				fail <- err
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // re-installer
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			f := filters.All[i%len(filters.All)]
			owner := fmt.Sprintf("proc-%d", f)
			if err := k.InstallFilter(owner, bins[owner]); err != nil {
				fail <- err
				return
			}
		}
	}()
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(seed int64) { // single dispatcher
			defer wg.Done()
			for i := 0; i < 300; i++ {
				p := pkts[(int(seed)+i)%len(pkts)]
				acc, err := k.DeliverPacket(p)
				if err != nil {
					fail <- err
					return
				}
				if err := checkVerdicts(p.Data, acc); err != nil {
					fail <- err
					return
				}
			}
		}(int64(g))
	}
	wg.Add(1)
	go func() { // batch dispatcher
		defer wg.Done()
		raw := make([][]byte, len(pkts))
		for i, p := range pkts {
			raw[i] = p.Data
		}
		for i := 0; i < 5; i++ {
			out, err := k.DeliverPackets(raw)
			if err != nil {
				fail <- err
				return
			}
			for j, acc := range out {
				if err := checkVerdicts(raw[j], acc); err != nil {
					fail <- err
					return
				}
			}
		}
		close(stop)
	}()
	wg.Wait()
	select {
	case err := <-fail:
		t.Fatal(err)
	default:
	}
}

// checkVerdicts compares a dispatch verdict set against the pure-Go
// reference semantics of the paper filters.
func checkVerdicts(pkt []byte, accepted []string) error {
	got := map[string]bool{}
	for _, o := range accepted {
		got[o] = true
	}
	for _, f := range filters.All {
		owner := fmt.Sprintf("proc-%d", f)
		if want := filters.Reference(f, pkt); got[owner] != want {
			return fmt.Errorf("owner %s: accept=%v want %v", owner, got[owner], want)
		}
	}
	return nil
}

// TestCompiledDispatchSkipsScratchWipe is the dirtyScratch contract:
// a store-free compiled filter must not force scratch wipes, and a
// scratch-writing interpreted run must not leak bytes into the next
// filter's view. The leak check runs through public dispatch only.
func TestCompiledDispatchSkipsScratchWipe(t *testing.T) {
	prog := filters.Prog(filters.Filter1)
	c, err := machine.Compile(prog, &machine.DEC21064)
	if err != nil {
		t.Fatal(err)
	}
	if c.WritesMemory() {
		t.Fatal("paper filter 1 unexpectedly stores — dirtyScratch test needs updating")
	}
	env := newPacketEnv()
	env.reset(64)
	if env.dirtyScratch {
		t.Fatal("fresh env starts dirty")
	}
	// Interp path conservatively dirties; compiled store-free path
	// must not.
	f := &installed{ext: nil, accepts: nil, compiled: c}
	if _, wrote, _ := runInstalled(f, &env.state, false); wrote {
		t.Fatal("store-free compiled filter reported a scratch write")
	}
}
