package kernel

import (
	"fmt"
	"log"

	pcc "repro"
	"repro/internal/filters"
	"repro/internal/policy"
)

// ExampleKernel_Stats shows the snapshot contract: counters read after
// the kernel has quiesced (no installs or deliveries in flight) obey
// the at-rest invariants — here, one cold install that missed the
// proof cache and one warm re-install served from it. While work is in
// flight the same snapshot is only approximate; see Stats.
func ExampleKernel_Stats() {
	cert, err := pcc.Certify(filters.SrcFilter1, policy.PacketFilter(), nil)
	if err != nil {
		log.Fatal(err)
	}
	k := New()
	if err := k.InstallFilter("example", cert.Binary); err != nil {
		log.Fatal(err)
	}
	if err := k.InstallFilter("example", cert.Binary); err != nil {
		log.Fatal(err)
	}
	st := k.Stats()
	fmt.Printf("validations=%d rejections=%d\n", st.Validations, st.Rejections)
	fmt.Printf("cache hits=%d misses=%d\n", st.CacheHits, st.CacheMisses)
	fmt.Printf("proof checking skipped on re-install: %v\n", st.CacheHits == 1)
	// Output:
	// validations=2 rejections=0
	// cache hits=1 misses=1
	// proof checking skipped on re-install: true
}
