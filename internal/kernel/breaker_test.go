package kernel

import (
	"fmt"
	"sync"
	"testing"
	"time"

	pcc "repro"
	"repro/internal/alpha"
	"repro/internal/machine"
	"repro/internal/pktgen"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// condFaultSrc faults iff the packet's first quadword is nonzero: the
// clean path is a plain RET, the hostile path loads through r4 (the
// scratch register the dispatch preamble zeroes), which is unmapped.
// This is the breaker tests' steerable fault: the packet decides
// whether this delivery is clean or a memory fault.
const condFaultSrc = "LDQ r5, 0(r1)\nBEQ r5, ok\nLDQ r0, 0(r4)\nok: RET"

// injectFaultyCompiled publishes an unvalidated program WITH a
// compiled form, bypassing the validation pipeline — the breaker
// supervises dispatch faults, and a validated filter cannot be made to
// fault on demand.
func injectFaultyCompiled(t *testing.T, k *Kernel, owner, src string) {
	t.Helper()
	prog := alpha.MustAssemble(src).Prog
	c, err := machine.Compile(prog, &machine.DEC21064)
	if err != nil {
		t.Fatal(err)
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	ctr := newOwnerCounter(len(k.stats.shards))
	ins := &installed{ext: &pcc.Extension{Prog: prog}, accepts: ctr, compiled: c}
	k.publishLocked(k.table.Load().withFilter(owner, ins))
}

// compiledForm reports whether owner's published table slot carries a
// compiled program.
func compiledForm(k *Kernel, owner string) bool {
	tb := k.table.Load()
	i, ok := tb.index[owner]
	return ok && tb.slots[i].c != nil
}

var (
	cleanPkt = pktgen.Packet{Data: make([]byte, 16)}
	faultPkt = pktgen.Packet{Data: append([]byte{1}, make([]byte, 15)...)}
)

// TestBreakerDemotesReadmitsCloses walks the full supervision cycle:
// Threshold faults demote the compiled form (open), the backoff gates
// re-admission, the expired backoff promotes it on probation
// (half-open), and Threshold clean deliveries close the breaker — each
// transition observable on the gauge, the audit log, and the flight
// recorder.
func TestBreakerDemotesReadmitsCloses(t *testing.T) {
	k := New()
	rec := telemetry.New()
	fr := telemetry.NewFlightRecorder(64)
	k.SetRecorder(rec)
	k.SetFlightRecorder(fr)
	k.SetBreaker(BreakerConfig{Threshold: 2, Base: 50 * time.Millisecond, Max: time.Second})
	injectFaultyCompiled(t, k, "flaky", condFaultSrc)
	if !compiledForm(k, "flaky") {
		t.Fatal("injected filter has no compiled form")
	}

	// Two faulting deliveries trip the breaker.
	for i := 0; i < 2; i++ {
		if _, err := k.DeliverPacket(faultPkt); err == nil {
			t.Fatal("faulting delivery returned no error")
		}
	}
	if st := k.Breakers()["flaky"]; st != breakerOpen {
		t.Fatalf("breaker state %d after %d faults, want open", st, 2)
	}
	if compiledForm(k, "flaky") {
		t.Fatal("compiled form still published after demotion")
	}
	if g := rec.Snapshot(false).LabeledGauges[MetricBreakerState]["flaky"]; g != breakerOpen {
		t.Fatalf("pcc_breaker_state{filter=flaky} = %v, want 1", g)
	}

	// Inside the backoff window a clean delivery must NOT re-admit.
	if _, err := k.DeliverPacket(cleanPkt); err != nil {
		t.Fatal(err)
	}
	if st := k.Breakers()["flaky"]; st != breakerOpen {
		t.Fatalf("breaker left open state (%d) before backoff expired", st)
	}

	// Past the backoff, the next delivery promotes to half-open — the
	// compiled form is back, on probation.
	time.Sleep(70 * time.Millisecond)
	if _, err := k.DeliverPacket(cleanPkt); err != nil {
		t.Fatal(err)
	}
	if !compiledForm(k, "flaky") {
		t.Fatal("compiled form not re-published on probation")
	}
	// That clean delivery already counted toward closing; one more
	// reaches Threshold=2 and closes the breaker.
	if _, err := k.DeliverPacket(cleanPkt); err != nil {
		t.Fatal(err)
	}
	if st := k.Breakers()["flaky"]; st != breakerClosed {
		t.Fatalf("breaker state %d after clean probation, want closed", st)
	}
	if !compiledForm(k, "flaky") {
		t.Fatal("compiled form lost on close")
	}
	if g := rec.Snapshot(false).LabeledGauges[MetricBreakerState]["flaky"]; g != breakerClosed {
		t.Fatalf("pcc_breaker_state{filter=flaky} = %v after close, want 0", g)
	}

	kinds := map[string]int{}
	for _, e := range fr.Events() {
		if e.Owner == "flaky" {
			kinds[e.Kind]++
		}
	}
	for _, want := range []string{
		telemetry.FlightBreakerOpen,
		telemetry.FlightBreakerHalfOpen,
		telemetry.FlightBreakerClose,
	} {
		if kinds[want] == 0 {
			t.Fatalf("no %s flight event for flaky: %v", want, kinds)
		}
	}
}

// TestBreakerReopensFromProbation: a fault during half-open re-opens
// with a doubled backoff rather than closing.
func TestBreakerReopensFromProbation(t *testing.T) {
	k := New()
	k.SetBreaker(BreakerConfig{Threshold: 1, Base: 30 * time.Millisecond, Max: time.Second})
	injectFaultyCompiled(t, k, "flaky", condFaultSrc)

	if _, err := k.DeliverPacket(faultPkt); err == nil {
		t.Fatal("faulting delivery returned no error")
	}
	if st := k.Breakers()["flaky"]; st != breakerOpen {
		t.Fatalf("state %d, want open", st)
	}
	time.Sleep(50 * time.Millisecond)
	// Probation delivery faults: straight back to open, trips now 2.
	if _, err := k.DeliverPacket(faultPkt); err == nil {
		t.Fatal("faulting probe returned no error")
	}
	if st := k.Breakers()["flaky"]; st != breakerOpen {
		t.Fatalf("state %d after faulting probe, want open", st)
	}
}

// TestBreakerEscalates: MaxTrips exhausted means the faults follow the
// filter, not the compiled form — the filter is uninstalled and its
// owner embargoed under the quarantine config.
func TestBreakerEscalates(t *testing.T) {
	k := New()
	fr := telemetry.NewFlightRecorder(64)
	k.SetFlightRecorder(fr)
	k.SetQuarantine(QuarantineConfig{Threshold: 3, Base: time.Minute})
	k.SetBreaker(BreakerConfig{Threshold: 1, Base: 10 * time.Millisecond, MaxTrips: 2})
	injectFaultyCompiled(t, k, "doomed", condFaultSrc)

	// Trip 1: open. Past backoff, the probe faults — trip 2 hits
	// MaxTrips and escalates.
	if _, err := k.DeliverPacket(faultPkt); err == nil {
		t.Fatal("faulting delivery returned no error")
	}
	time.Sleep(25 * time.Millisecond)
	if _, err := k.DeliverPacket(faultPkt); err == nil {
		t.Fatal("faulting probe returned no error")
	}

	if got := len(k.Owners()); got != 0 {
		t.Fatalf("escalated filter still installed: %v", k.Owners())
	}
	if _, embargoed := k.Quarantined()["doomed"]; !embargoed {
		t.Fatalf("escalated owner not quarantined: %v", k.Quarantined())
	}
	// A clean delivery afterwards must not resurrect anything.
	if _, err := k.DeliverPacket(cleanPkt); err != nil {
		t.Fatal(err)
	}
	if st := k.Breakers()["doomed"]; st != breakerOpen {
		t.Fatalf("escalated breaker state %d, want open (terminal)", st)
	}
}

// TestBreakerEscalateStoreFailureHoldsOpen: when the escalation
// uninstall cannot be journaled (sick or closed store), the filter
// stays installed — so supervision must NOT stand down. The compiled
// form is demoted, the breaker stays open and armed, the owner is not
// quarantined for a disk failure, and once the store trouble clears
// the next probation fault re-escalates to a real uninstall.
func TestBreakerEscalateStoreFailureHoldsOpen(t *testing.T) {
	k := New()
	wal, err := store.Open(t.TempDir(), store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	wal.Close() // the disk "dies": every append now fails
	k.SetStore(wal)
	k.SetQuarantine(QuarantineConfig{Threshold: 3, Base: time.Minute})
	k.SetBreaker(BreakerConfig{Threshold: 1, Base: 10 * time.Millisecond, MaxTrips: 2})
	injectFaultyCompiled(t, k, "doomed", condFaultSrc)

	// Trip 1 opens; past backoff the probe faults — trip 2 escalates,
	// but the uninstall's journal append fails.
	if _, err := k.DeliverPacket(faultPkt); err == nil {
		t.Fatal("faulting delivery returned no error")
	}
	time.Sleep(25 * time.Millisecond)
	if _, err := k.DeliverPacket(faultPkt); err == nil {
		t.Fatal("faulting probe returned no error")
	}
	if got := k.Owners(); len(got) != 1 {
		t.Fatalf("filter vanished despite failed uninstall: %v", got)
	}
	if compiledForm(k, "doomed") {
		t.Fatal("compiled form still published after failed escalation")
	}
	if st := k.Breakers()["doomed"]; st != breakerOpen {
		t.Fatalf("state %d after failed escalation, want open", st)
	}
	if k.brkArmed.Load() != 1 {
		t.Fatalf("brkArmed = %d after failed escalation, want 1 (supervision must continue)",
			k.brkArmed.Load())
	}
	if _, embargoed := k.Quarantined()["doomed"]; embargoed {
		t.Fatal("owner quarantined for a store failure")
	}

	// The store trouble clears (here: detached); the next probation
	// fault re-escalates, and this time the uninstall commits.
	k.SetStore(nil)
	time.Sleep(25 * time.Millisecond)
	if _, err := k.DeliverPacket(faultPkt); err == nil {
		t.Fatal("faulting probe returned no error")
	}
	if got := k.Owners(); len(got) != 0 {
		t.Fatalf("re-escalation did not uninstall: %v", got)
	}
	if _, embargoed := k.Quarantined()["doomed"]; !embargoed {
		t.Fatalf("re-escalated owner not quarantined: %v", k.Quarantined())
	}
	if k.brkArmed.Load() != 0 {
		t.Fatalf("brkArmed = %d after terminal escalation, want 0", k.brkArmed.Load())
	}
}

// TestBreakerClosedFaultsAccumulate: closed-state faults never decay —
// whether clean deliveries interleave, and whether an unrelated
// filter's breaker happens to be armed (which is what gates the clean
// hook), the Threshold'th fault always trips the breaker.
func TestBreakerClosedFaultsAccumulate(t *testing.T) {
	k := New()
	k.SetBreaker(BreakerConfig{Threshold: 3, Base: time.Minute})
	injectFaultyCompiled(t, k, "flaky", condFaultSrc)

	// Fault, then a clean streak, then fault again — twice. Without an
	// armed breaker the clean hook never runs; with one it must not
	// reset the count either. Either way the third fault trips.
	for i := 0; i < 2; i++ {
		if _, err := k.DeliverPacket(faultPkt); err == nil {
			t.Fatal("faulting delivery returned no error")
		}
		for j := 0; j < 5; j++ {
			if _, err := k.DeliverPacket(cleanPkt); err != nil {
				t.Fatal(err)
			}
		}
		if st := k.Breakers()["flaky"]; st != breakerClosed {
			t.Fatalf("state %d after %d faults, want closed", st, i+1)
		}
	}
	if _, err := k.DeliverPacket(faultPkt); err == nil {
		t.Fatal("faulting delivery returned no error")
	}
	if st := k.Breakers()["flaky"]; st != breakerOpen {
		t.Fatalf("state %d after Threshold accumulated faults, want open", st)
	}
}

// TestBreakerBatchPath: DeliverPackets drives the same supervision —
// the faulting packet in a batch counts a fault, clean batches count
// probation progress.
func TestBreakerBatchPath(t *testing.T) {
	k := New()
	k.SetBreaker(BreakerConfig{Threshold: 1, Base: 20 * time.Millisecond, Max: time.Second})
	injectFaultyCompiled(t, k, "flaky", condFaultSrc)

	if _, err := k.DeliverPackets([][]byte{cleanPkt.Data, faultPkt.Data}); err == nil {
		t.Fatal("faulting batch returned no error")
	}
	if st := k.Breakers()["flaky"]; st != breakerOpen {
		t.Fatalf("state %d after batch fault, want open", st)
	}
	time.Sleep(35 * time.Millisecond)
	// One clean batch = one clean observation = Threshold, closing it.
	if _, err := k.DeliverPackets([][]byte{cleanPkt.Data, cleanPkt.Data}); err != nil {
		t.Fatal(err)
	}
	if st := k.Breakers()["flaky"]; st != breakerClosed {
		t.Fatalf("state %d after clean batch, want closed", st)
	}
	if !compiledForm(k, "flaky") {
		t.Fatal("compiled form not restored after batch close")
	}
}

// TestBreakerReinstallForgets: a fresh install is a fresh binary — the
// supervision record dies with the old one.
func TestBreakerReinstallForgets(t *testing.T) {
	k := New()
	k.SetBreaker(BreakerConfig{Threshold: 1, Base: time.Minute})
	injectFaultyCompiled(t, k, "flaky", condFaultSrc)
	if _, err := k.DeliverPacket(faultPkt); err == nil {
		t.Fatal("faulting delivery returned no error")
	}
	if st := k.Breakers()["flaky"]; st != breakerOpen {
		t.Fatalf("state %d, want open", st)
	}
	bins := certAll(t)
	var bin []byte
	for _, b := range bins {
		bin = b
		break
	}
	if err := k.InstallFilter("flaky", bin); err != nil {
		t.Fatal(err)
	}
	if _, tracked := k.Breakers()["flaky"]; tracked {
		t.Fatal("reinstall kept the old binary's breaker record")
	}
}

// TestBreakerDisableRestores: turning supervision off promotes every
// demoted filter back and drops all state.
func TestBreakerDisableRestores(t *testing.T) {
	k := New()
	k.SetBreaker(BreakerConfig{Threshold: 1, Base: time.Minute})
	injectFaultyCompiled(t, k, "flaky", condFaultSrc)
	if _, err := k.DeliverPacket(faultPkt); err == nil {
		t.Fatal("faulting delivery returned no error")
	}
	if compiledForm(k, "flaky") {
		t.Fatal("not demoted")
	}
	k.SetBreaker(BreakerConfig{})
	if !compiledForm(k, "flaky") {
		t.Fatal("disable did not restore the compiled form")
	}
	if len(k.Breakers()) != 0 {
		t.Fatalf("disable kept state: %v", k.Breakers())
	}
	if k.brkArmed.Load() != 0 {
		t.Fatalf("brkArmed = %d after disable, want 0", k.brkArmed.Load())
	}
}

// TestBreakerConcurrent hammers the supervisor from many goroutines
// mixing clean and faulting deliveries on both dispatch paths while
// probes and demotions race — the -race run is the assertion; at the
// end the arm counter must be consistent with the state map.
func TestBreakerConcurrent(t *testing.T) {
	k := New()
	k.SetBreaker(BreakerConfig{Threshold: 2, Base: time.Millisecond, Max: 4 * time.Millisecond})
	for i := 0; i < 4; i++ {
		injectFaultyCompiled(t, k, fmt.Sprintf("flaky-%d", i), condFaultSrc)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if (i+g)%5 == 0 {
					k.DeliverPacket(faultPkt)
				} else if g%2 == 0 {
					k.DeliverPacket(cleanPkt)
				} else {
					k.DeliverPackets([][]byte{cleanPkt.Data, cleanPkt.Data})
				}
			}
		}(g)
	}
	wg.Wait()
	armed := k.brkArmed.Load()
	var nonClosed int64
	for _, st := range k.Breakers() {
		if st != breakerClosed {
			nonClosed++
		}
	}
	if armed != nonClosed {
		t.Fatalf("brkArmed=%d but %d breakers are non-closed", armed, nonClosed)
	}
	k.Quiesce()
}
