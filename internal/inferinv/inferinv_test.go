package inferinv

import (
	"testing"

	"repro/internal/alpha"
	"repro/internal/filters"
	"repro/internal/logic"
	"repro/internal/policy"
	"repro/internal/prover"
	"repro/internal/vcgen"
)

// certifyWithInferred runs the complete pipeline using only inferred
// invariants.
func certifyWithInferred(t *testing.T, src string, pol *policy.Policy) {
	t.Helper()
	a := alpha.MustAssemble(src)
	invs := Infer(a.Prog, pol.Pre)
	res, err := vcgen.Gen(a.Prog, pol.Pre, pol.Post, invs)
	if err != nil {
		t.Fatalf("vcgen with inferred invariants: %v", err)
	}
	proof, err := prover.Prove(res.SP)
	if err != nil {
		for pc, inv := range invs {
			t.Logf("inferred invariant at pc %d: %s", pc, inv)
		}
		t.Fatalf("certification with inferred invariants failed: %v", err)
	}
	if err := prover.Check(proof, res.SP); err != nil {
		t.Fatal(err)
	}
}

func TestInferChecksumInvariant(t *testing.T) {
	certifyWithInferred(t, filters.SrcChecksum, policy.PacketFilter())
}

func TestInferWord32ChecksumInvariant(t *testing.T) {
	certifyWithInferred(t, filters.SrcChecksumWord32, policy.PacketFilter())
}

func TestInferNestedLoops(t *testing.T) {
	certifyWithInferred(t, `
        CLR    r4
        CMPULT r4, r2, r6
        BEQ    r6, done
outer:  ADDQ   r1, r4, r7
        LDQ    r8, 0(r7)
        CLR    r5
inner:  ADDQ   r3, r5, r7
        LDQ    r9, 0(r7)
        ADDQ   r9, r8, r9
        STQ    r9, 0(r7)
        ADDQ   r5, 8, r5
        CMPULT r5, 16, r6
        BNE    r6, inner
        ADDQ   r4, 8, r4
        CMPULT r4, r2, r6
        BNE    r6, outer
done:   CLR    r0
        RET
	`, policy.PacketFilter())
}

func TestInferSimpleSumLoop(t *testing.T) {
	certifyWithInferred(t, `
        CLR    r4
        CLR    r5
        CMPULT r4, r2, r6
        BEQ    r6, done
loop:   ADDQ   r1, r4, r7
        LDQ    r8, 0(r7)
        ADDQ   r5, r8, r5
        ADDQ   r4, 8, r4
        CMPULT r4, r2, r6
        BNE    r6, loop
done:   MOV    r5, r0
        RET
	`, policy.PacketFilter())
}

func TestInferEmptyForLoopFree(t *testing.T) {
	if got := Infer(filters.Prog(filters.Filter4), policy.PacketFilter().Pre); got != nil {
		t.Fatalf("loop-free program got invariants: %v", got)
	}
}

func TestInferredInvariantShape(t *testing.T) {
	a := alpha.MustAssemble(filters.SrcChecksum)
	invs := Infer(a.Prog, policy.PacketFilter().Pre)
	inv, ok := invs[a.Labels["loop"]]
	if !ok {
		t.Fatalf("no invariant at loop head: %v", invs)
	}
	s := inv.String()
	for _, frag := range []string{
		"rd((i + r1))",        // the carried precondition clause
		"cmpult(r4, r2) <> 0", // the continuation guard
		"(r4 & 7) = 0",        // counter alignment
	} {
		if !containsStr(s, frag) {
			t.Errorf("inferred invariant missing %q:\n%s", frag, s)
		}
	}
	// The hand-written invariant must be implied (they coincide up to
	// conjunct order); check mutual certification instead of syntax.
	hand := logic.NormPred(filters.ChecksumInvariant())
	_ = hand
}

func containsStr(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && (indexOf(s, sub) >= 0))
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestGuardNotInferredFromDataBranch(t *testing.T) {
	// A backward branch tested on loaded data (not a compare result)
	// must not produce a bogus guard; certification of such a loop
	// rightly fails without a usable bound.
	a := alpha.MustAssemble(`
        CLR    r4
loop:   ADDQ   r4, 8, r4
        LDQ    r5, 0(r1)
        BNE    r5, loop
        CLR    r0
        RET
	`)
	invs := Infer(a.Prog, policy.PacketFilter().Pre)
	inv := invs[a.Labels["loop"]]
	if containsStr(inv.String(), "cmpult") {
		t.Fatalf("bogus guard inferred: %s", inv)
	}
}
