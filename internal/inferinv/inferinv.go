// Package inferinv implements heuristic loop-invariant inference for
// the counted-loop idiom that packet-processing code overwhelmingly
// uses: an offset register initialized to an aligned constant, bumped
// by a constant stride, and guarded by an unsigned compare against a
// bound.
//
// The paper (§4) identifies invariant generation as "the main obstacle
// in automating the generation of proofs" and resigns itself to
// hand-written invariants. The key observation exploited here is that
// inference may be *unsound without risk*: whatever this package
// guesses is handed to the certifier, which proves it or rejects the
// program — a wrong guess can never produce an unsafe binary, only a
// failed certification. That license makes a simple syntactic
// heuristic genuinely useful.
//
// For each backward-branch target the inferred invariant conjoins:
//
//  1. every conjunct of the (normalized) precondition whose registers
//     the program never writes — the policy's quantified rd/wr clauses
//     and length bounds survive verbatim;
//  2. the loop's continuation guard, recovered from the compare
//     instruction feeding the backward branch (e.g.
//     cmpult(r4, r2) ≠ 0);
//  3. an alignment fact (r & 2^k−1 = 0) for every register whose
//     writes are, globally, aligned constant initializations and
//     aligned constant self-increments — the "counter" registers.
package inferinv

import (
	"fmt"
	"math/bits"

	"repro/internal/alpha"
	"repro/internal/logic"
)

// Infer returns a loop-invariant table (instruction index of each
// backward-branch target ↦ inferred invariant) for prog under the
// given precondition. Programs without backward branches get an empty
// table. Inference never fails — but certification of a bad guess
// will.
func Infer(prog []alpha.Instr, pre logic.Pred) map[int]logic.Pred {
	targets := backwardTargets(prog)
	if len(targets) == 0 {
		return nil
	}

	written := writtenRegisters(prog)
	stable := stablePreConjuncts(pre, written)
	counters := counterAlignments(prog)

	invs := make(map[int]logic.Pred, len(targets))
	for _, t := range targets {
		conjs := append([]logic.Pred(nil), stable...)
		conjs = append(conjs, loopGuards(prog, t)...)
		for _, c := range counters {
			// An alignment fact is plausible at this loop head only if
			// the counter has an aligned initialization somewhere
			// before it (otherwise the first entry arrives with an
			// arbitrary register value and certification would fail).
			if c.initPC < t.target {
				conjs = append(conjs, c.pred)
			}
		}
		invs[t.target] = logic.Conj(conjs...)
	}
	return invs
}

type loop struct {
	target int   // loop head
	branch []int // pcs of backward branches to it
}

func backwardTargets(prog []alpha.Instr) []loop {
	byTarget := map[int]*loop{}
	var order []int
	for pc, ins := range prog {
		if ins.Op.Class() == alpha.ClassBranch && ins.Target <= pc {
			l, ok := byTarget[ins.Target]
			if !ok {
				l = &loop{target: ins.Target}
				byTarget[ins.Target] = l
				order = append(order, ins.Target)
			}
			l.branch = append(l.branch, pc)
		}
	}
	out := make([]loop, 0, len(order))
	for _, t := range order {
		out = append(out, *byTarget[t])
	}
	return out
}

// writtenRegisters returns the set of register names the program ever
// writes.
func writtenRegisters(prog []alpha.Instr) map[string]bool {
	out := map[string]bool{}
	for _, ins := range prog {
		switch ins.Op.Class() {
		case alpha.ClassMem:
			if ins.Op == alpha.LDQ || ins.Op == alpha.LDA {
				out[regName(ins.Ra)] = true
			}
			if ins.Op == alpha.STQ {
				out["rm"] = true
			}
		case alpha.ClassOperate:
			out[regName(ins.Rc)] = true
		}
	}
	return out
}

func regName(r alpha.Reg) string { return fmt.Sprintf("r%d", r) }

// stablePreConjuncts keeps the precondition conjuncts whose free
// variables the program never writes.
func stablePreConjuncts(pre logic.Pred, written map[string]bool) []logic.Pred {
	var out []logic.Pred
	for _, c := range logic.Conjuncts(logic.NormPred(pre)) {
		ok := true
		for v := range logic.FreeVars(c) {
			if written[v] {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, c)
		}
	}
	return out
}

// loopGuards recovers continuation guards: for each backward branch,
// the fact its taken-condition asserts about the compare feeding it.
func loopGuards(prog []alpha.Instr, l loop) []logic.Pred {
	var out []logic.Pred
	for _, bpc := range l.branch {
		br := prog[bpc]
		if br.Op != alpha.BNE && br.Op != alpha.BEQ {
			continue
		}
		// Find the compare defining the tested register, scanning
		// backward within the loop body; its operand registers must
		// not be redefined between the compare and the branch.
		for pc := bpc - 1; pc >= l.target; pc-- {
			ins := prog[pc]
			if ins.Op.Class() != alpha.ClassOperate || ins.Rc != br.Ra {
				continue
			}
			var op logic.BinOp
			switch ins.Op {
			case alpha.CMPULT:
				op = logic.OpCmpUlt
			case alpha.CMPULE:
				op = logic.OpCmpUle
			case alpha.CMPEQ:
				op = logic.OpCmpEq
			default:
				// The tested register holds data, not a compare
				// result: no guard to learn from this branch.
				pc = l.target // stop scanning
				continue
			}
			if redefinedBetween(prog, pc+1, bpc, ins.Ra) ||
				(!ins.HasLit && redefinedBetween(prog, pc+1, bpc, ins.Rb)) {
				break
			}
			var rhs logic.Expr
			if ins.HasLit {
				rhs = logic.C(uint64(ins.Lit))
			} else {
				rhs = regVar(ins.Rb)
			}
			cmp := logic.Bin{Op: op, L: regVar(ins.Ra), R: rhs}
			if br.Op == alpha.BNE {
				out = append(out, logic.Ne(cmp, logic.C(0)))
			} else {
				out = append(out, logic.Eq(cmp, logic.C(0)))
			}
			break
		}
	}
	return out
}

func regVar(r alpha.Reg) logic.Expr {
	if r == alpha.RegZero {
		return logic.C(0)
	}
	return logic.V(regName(r))
}

func redefinedBetween(prog []alpha.Instr, from, to int, r alpha.Reg) bool {
	if r == alpha.RegZero {
		return false
	}
	for pc := from; pc < to; pc++ {
		ins := prog[pc]
		switch ins.Op.Class() {
		case alpha.ClassMem:
			if (ins.Op == alpha.LDQ || ins.Op == alpha.LDA) && ins.Ra == r {
				return true
			}
		case alpha.ClassOperate:
			if ins.Rc == r {
				return true
			}
		}
	}
	return false
}

// counterFact is an inferred alignment fact together with the pc of
// the counter's first aligned initialization.
type counterFact struct {
	pred   logic.Pred
	initPC int
}

// counterAlignments finds registers whose every write is an aligned
// constant load or an aligned constant self-increment, and emits
// (r & 2^k−1) = 0 for the largest k all writes respect.
func counterAlignments(prog []alpha.Instr) []counterFact {
	// trailing-zero bound per register; -1 = disqualified.
	tz := map[alpha.Reg]int{}
	init := map[alpha.Reg]int{}
	bound := func(r alpha.Reg, k int) {
		cur, seen := tz[r]
		if !seen {
			tz[r] = k
			return
		}
		if cur >= 0 && k < cur {
			tz[r] = k
		}
	}
	disqualify := func(r alpha.Reg) { tz[r] = -1 }
	recordInit := func(r alpha.Reg, pc, k int) {
		bound(r, k)
		if _, seen := init[r]; !seen {
			init[r] = pc
		}
	}

	for pc, ins := range prog {
		switch ins.Op.Class() {
		case alpha.ClassMem:
			if ins.Op == alpha.LDA {
				if ins.Rb == alpha.RegZero { // constant materialization
					recordInit(ins.Ra, pc, bits.TrailingZeros64(uint64(int64(ins.Disp))))
				} else {
					disqualify(ins.Ra)
				}
			}
			if ins.Op == alpha.LDQ {
				disqualify(ins.Ra)
			}
		case alpha.ClassOperate:
			r := ins.Rc
			switch {
			case ins.Op == alpha.BIS && ins.Ra == alpha.RegZero && ins.HasLit:
				// CLR r / MOV lit, r.
				recordInit(r, pc, bits.TrailingZeros64(uint64(ins.Lit)))
			case ins.Op == alpha.ADDQ && ins.Ra == r && ins.HasLit:
				// r := r + stride (not an initialization).
				bound(r, bits.TrailingZeros64(uint64(ins.Lit)))
			default:
				disqualify(r)
			}
		}
	}

	var out []counterFact
	for r := alpha.Reg(0); r < alpha.NumRegs; r++ {
		k, seen := tz[r]
		initPC, initialized := init[r]
		if !seen || !initialized || k <= 0 {
			continue
		}
		if k > 3 {
			k = 3 // 8-byte alignment is all the policies ever need
		}
		mask := uint64(1)<<k - 1
		out = append(out, counterFact{
			pred:   logic.Eq(logic.And2(regVar(r), logic.C(mask)), logic.C(0)),
			initPC: initPC,
		})
	}
	return out
}
