// Package sfi implements the Software Fault Isolation baseline of
// §3.1 (Wahbe et al., SOSP '93): a binary rewriter that inserts
// sandboxing instructions before every memory operation, and the
// load-time validator that checks a binary was rewritten correctly.
//
// The experiment follows the paper's concessions exactly: packets are
// allocated on a 2048-byte boundary and the filter may access the
// entire 2048-byte segment; loads are sandboxed into the packet
// segment and stores into the scratch segment. Sandboxing computes
//
//	addr' = segment_base + (addr & 2040)
//
// which both confines the access and forces 8-byte alignment (2040 =
// 0x7F8). Addition is used instead of the classic OR — equivalent
// here because the masked offset cannot carry into the segment bits —
// which also makes the rewritten code certifiable under the
// sfi-segment PCC policy (the §3.1 "PCC for SFI" experiment).
package sfi

import (
	"fmt"

	"repro/internal/alpha"
	"repro/internal/policy"
)

// Reserved registers. Input programs must not use them.
const (
	RegOffMask     = alpha.Reg(7)  // holds 2040
	RegPktBase     = alpha.Reg(8)  // packet segment base
	RegScratchBase = alpha.Reg(9)  // scratch segment base
	RegTemp        = alpha.Reg(10) // sandboxed address
)

// offsetMask keeps an in-segment, 8-byte-aligned offset.
const offsetMask = policy.SFISegmentSize - 8 // 2040

// Prologue is the canonical sandbox setup sequence.
func Prologue() []alpha.Instr {
	return []alpha.Instr{
		{Op: alpha.LDA, Ra: RegOffMask, Rb: alpha.RegZero, Disp: offsetMask},
		{Op: alpha.LDA, Ra: RegTemp, Rb: alpha.RegZero, Disp: -policy.SFISegmentSize},
		{Op: alpha.AND, Ra: policy.RegPacket, Rb: RegTemp, Rc: RegPktBase},
		{Op: alpha.AND, Ra: policy.RegScratch, Rb: RegTemp, Rc: RegScratchBase},
	}
}

// Rewrite sandboxes every load and store of prog. It fails if the
// program already uses the reserved registers.
func Rewrite(prog []alpha.Instr) ([]alpha.Instr, error) {
	for pc, ins := range prog {
		if usesReserved(ins) {
			return nil, fmt.Errorf("sfi: pc %d (%s): program uses a reserved register", pc, ins)
		}
	}

	out := Prologue()
	// newPC[i] is the rewritten index of original instruction i;
	// newPC[len] maps the one-past-end target.
	newPC := make([]int, len(prog)+1)
	for pc, ins := range prog {
		newPC[pc] = len(out)
		switch ins.Op {
		case alpha.LDQ:
			out = append(out, sandbox(ins.Rb, ins.Disp, RegPktBase)...)
			out = append(out, alpha.Instr{Op: alpha.LDQ, Ra: ins.Ra, Rb: RegTemp})
		case alpha.STQ:
			out = append(out, sandbox(ins.Rb, ins.Disp, RegScratchBase)...)
			out = append(out, alpha.Instr{Op: alpha.STQ, Ra: ins.Ra, Rb: RegTemp})
		default:
			out = append(out, ins)
		}
	}
	newPC[len(prog)] = len(out)

	// Retarget branches.
	for pc := range out {
		ins := &out[pc]
		if ins.Op.Class() == alpha.ClassBranch {
			ins.Target = newPC[ins.Target]
		}
	}
	return out, nil
}

// sandbox emits the three-instruction confinement sequence leaving the
// safe address in RegTemp.
func sandbox(base alpha.Reg, disp int16, segBase alpha.Reg) []alpha.Instr {
	return []alpha.Instr{
		{Op: alpha.LDA, Ra: RegTemp, Rb: base, Disp: disp},        // addr
		{Op: alpha.AND, Ra: RegTemp, Rb: RegOffMask, Rc: RegTemp}, // aligned in-segment offset
		{Op: alpha.ADDQ, Ra: RegTemp, Rb: segBase, Rc: RegTemp},   // segment base + offset
	}
}

func usesReserved(ins alpha.Instr) bool {
	reserved := func(r alpha.Reg) bool {
		return r == RegOffMask || r == RegPktBase || r == RegScratchBase || r == RegTemp
	}
	switch ins.Op.Class() {
	case alpha.ClassMem:
		return reserved(ins.Ra) || reserved(ins.Rb)
	case alpha.ClassOperate:
		if reserved(ins.Ra) || reserved(ins.Rc) {
			return true
		}
		return !ins.HasLit && reserved(ins.Rb)
	case alpha.ClassBranch:
		return ins.Op != alpha.BR && reserved(ins.Ra)
	}
	return false
}

// Validate is the load-time SFI check ("reportedly simple if it must
// deal only with binaries for which run-time checks have been inserted
// on every potentially dangerous memory operation"): the prologue must
// be canonical, the sandbox registers must never be redefined, and
// every memory operation must be the final instruction of a canonical
// sandbox sequence. Branches may not jump into the middle of a
// sequence.
func Validate(prog []alpha.Instr) error {
	pro := Prologue()
	if len(prog) < len(pro) {
		return fmt.Errorf("sfi: program shorter than the prologue")
	}
	for i, want := range pro {
		if prog[i] != want {
			return fmt.Errorf("sfi: pc %d: prologue mismatch (%s)", i, prog[i])
		}
	}

	guarded := map[int]bool{} // pcs that are part of a sandbox sequence
	for pc := len(pro); pc < len(prog); pc++ {
		ins := prog[pc]
		switch ins.Op {
		case alpha.LDQ, alpha.STQ:
			segBase := RegPktBase
			if ins.Op == alpha.STQ {
				segBase = RegScratchBase
			}
			if ins.Rb != RegTemp || ins.Disp != 0 {
				return fmt.Errorf("sfi: pc %d (%s): memory op not through the sandbox register", pc, ins)
			}
			if pc < len(pro)+3 {
				return fmt.Errorf("sfi: pc %d: memory op without sandbox sequence", pc)
			}
			want := sandbox(prog[pc-3].Rb, prog[pc-3].Disp, segBase)
			for k := 0; k < 3; k++ {
				if prog[pc-3+k] != want[k] {
					return fmt.Errorf("sfi: pc %d (%s): non-canonical sandbox sequence", pc, ins)
				}
			}
			guarded[pc-1] = true
			guarded[pc-2] = true
			guarded[pc] = true
		default:
			if writesReservedState(ins) {
				return fmt.Errorf("sfi: pc %d (%s): redefines a sandbox register", pc, ins)
			}
		}
	}

	// No branch may enter a sandbox sequence after its LDA: that could
	// reach the memory operation with a stale sandbox register.
	for pc, ins := range prog {
		if ins.Op.Class() == alpha.ClassBranch && guarded[ins.Target] {
			return fmt.Errorf("sfi: pc %d: branch into a sandbox sequence", pc)
		}
	}
	return nil
}

// writesReservedState reports whether ins redefines r7/r8/r9 (r10 is
// the scratch temp and is rewritten freely by sandbox sequences).
func writesReservedState(ins alpha.Instr) bool {
	fixed := func(r alpha.Reg) bool {
		return r == RegOffMask || r == RegPktBase || r == RegScratchBase
	}
	switch ins.Op.Class() {
	case alpha.ClassMem:
		return (ins.Op == alpha.LDQ || ins.Op == alpha.LDA) && fixed(ins.Ra)
	case alpha.ClassOperate:
		return fixed(ins.Rc)
	}
	return false
}
