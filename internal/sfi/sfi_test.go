package sfi

import (
	"strings"
	"testing"

	"repro/internal/alpha"
	"repro/internal/filters"
	"repro/internal/machine"
	"repro/internal/pktgen"
	"repro/internal/policy"
	"repro/internal/prover"
	"repro/internal/vcgen"
)

func TestRewriteValidates(t *testing.T) {
	for _, f := range filters.All {
		rw, err := Rewrite(filters.Prog(f))
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		if err := Validate(rw); err != nil {
			t.Errorf("%v: rewritten binary fails SFI validation: %v", f, err)
		}
		if err := alpha.Validate(rw); err != nil {
			t.Errorf("%v: rewritten binary ill-formed: %v", f, err)
		}
	}
}

func TestRewrittenFiltersEquivalent(t *testing.T) {
	pkts := pktgen.Generate(10000, pktgen.Config{Seed: 11})
	env := filters.Env{SFI: true}
	plain := filters.Env{}
	for _, f := range filters.All {
		orig := filters.Prog(f)
		rw, err := Rewrite(orig)
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range pkts {
			want, _, err := plain.Exec(orig, p.Data, machine.Checked)
			if err != nil {
				t.Fatalf("%v pkt %d: original: %v", f, i, err)
			}
			got, _, err := env.Exec(rw, p.Data, machine.Checked)
			if err != nil {
				t.Fatalf("%v pkt %d: rewritten: %v", f, i, err)
			}
			if (got != 0) != (want != 0) {
				t.Fatalf("%v pkt %d: SFI=%d, orig=%d", f, i, got, want)
			}
		}
	}
}

func TestSFIOverheadBounded(t *testing.T) {
	// The paper measures PCC filters ~25% faster than SFI; our model
	// should put SFI within 1.1x-2.5x of PCC.
	pkts := pktgen.Generate(3000, pktgen.Config{Seed: 13})
	env := filters.Env{SFI: true}
	plain := filters.Env{}
	for _, f := range filters.All {
		orig := filters.Prog(f)
		rw, _ := Rewrite(orig)
		var base, sfi int64
		for _, p := range pkts {
			_, c1, err := plain.Exec(orig, p.Data, machine.Checked)
			if err != nil {
				t.Fatal(err)
			}
			_, c2, err := env.Exec(rw, p.Data, machine.Checked)
			if err != nil {
				t.Fatal(err)
			}
			base += c1
			sfi += c2
		}
		ratio := float64(sfi) / float64(base)
		if ratio < 1.05 || ratio > 2.6 {
			t.Errorf("%v: SFI/PCC cycle ratio = %.2f, out of expected band", f, ratio)
		}
	}
}

func TestRewriteRejectsReservedRegisters(t *testing.T) {
	prog := []alpha.Instr{
		{Op: alpha.ADDQ, Ra: 0, HasLit: true, Lit: 1, Rc: RegPktBase},
		{Op: alpha.RET},
	}
	if _, err := Rewrite(prog); err == nil {
		t.Fatal("program using r8 accepted")
	}
}

func TestValidatorRejectsRawMemoryOps(t *testing.T) {
	// An unsandboxed load after a valid prologue must be rejected.
	prog := append(Prologue(),
		alpha.Instr{Op: alpha.LDQ, Ra: 0, Rb: 1, Disp: 0},
		alpha.Instr{Op: alpha.RET})
	err := Validate(prog)
	if err == nil || !strings.Contains(err.Error(), "sandbox") {
		t.Fatalf("raw load accepted: %v", err)
	}
}

func TestValidatorRejectsTamperedSequence(t *testing.T) {
	rw, err := Rewrite(filters.Prog(filters.Filter1))
	if err != nil {
		t.Fatal(err)
	}
	// Find a sandbox AND and weaken its mask register use.
	tampered := false
	for pc, ins := range rw {
		if ins.Op == alpha.AND && ins.Rc == RegTemp && ins.Rb == RegOffMask {
			mut := append([]alpha.Instr(nil), rw...)
			mut[pc].Rb = RegTemp // AND r10, r10 — no confinement
			if Validate(mut) == nil {
				t.Fatal("weakened sandbox accepted")
			}
			tampered = true
			break
		}
	}
	if !tampered {
		t.Fatal("no sandbox sequence found to tamper with")
	}
}

func TestValidatorRejectsSandboxRegisterRedefinition(t *testing.T) {
	rw, err := Rewrite(filters.Prog(filters.Filter1))
	if err != nil {
		t.Fatal(err)
	}
	mut := append([]alpha.Instr(nil), rw...)
	// Insert a redefinition of the mask register right after prologue.
	evil := alpha.Instr{Op: alpha.ADDQ, Ra: RegOffMask, HasLit: true, Lit: 8, Rc: RegOffMask}
	mut = append(mut[:4:4], append([]alpha.Instr{evil}, mut[4:]...)...)
	for pc := range mut {
		if mut[pc].Op.Class() == alpha.ClassBranch && mut[pc].Target > 4 {
			mut[pc].Target++
		}
	}
	if Validate(mut) == nil {
		t.Fatal("sandbox register redefinition accepted")
	}
}

func TestValidatorRejectsBranchIntoSequence(t *testing.T) {
	rw, err := Rewrite(filters.Prog(filters.Filter2))
	if err != nil {
		t.Fatal(err)
	}
	// Find a memory op and add a branch targeting it directly.
	for pc, ins := range rw {
		if ins.Op == alpha.LDQ && ins.Rb == RegTemp {
			mut := append([]alpha.Instr(nil), rw...)
			// Retarget the first conditional branch at it.
			for bpc := range mut {
				if mut[bpc].Op.Class() == alpha.ClassBranch && bpc < pc {
					mut[bpc].Target = pc
					if Validate(mut) == nil {
						t.Fatal("branch into sandbox sequence accepted")
					}
					return
				}
			}
		}
	}
	t.Skip("no branch before a load in this filter")
}

// TestSFIRewrittenFiltersCertify is the §3.1 hybrid experiment: the
// SFI-rewritten binaries are provably safe under the sfi-segment
// policy, with "proof sizes and validation times very similar to those
// for plain PCC packets".
func TestSFIRewrittenFiltersCertify(t *testing.T) {
	pol := policy.SFISegment()
	for _, f := range filters.All {
		rw, err := Rewrite(filters.Prog(f))
		if err != nil {
			t.Fatal(err)
		}
		res, err := vcgen.Gen(rw, pol.Pre, pol.Post, nil)
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		proof, err := prover.Prove(res.SP)
		if err != nil {
			t.Fatalf("%v: SFI certification failed: %v", f, err)
		}
		if err := prover.Check(proof, res.SP); err != nil {
			t.Fatalf("%v: %v", f, err)
		}
	}
}

func TestWildSFIProgramIsStillConfined(t *testing.T) {
	// A program computing a garbage address: after rewriting, the
	// sandbox confines it; execution must not fault (it reads garbage
	// inside the segment instead — exactly SFI's guarantee).
	src := `
        MOVI  0x7FFF, r4
        SLL   r4, 16, r4      ; bogus address
        LDQ   r5, 0(r4)
        MOV   r5, r0
        RET
	`
	prog := alpha.MustAssemble(src).Prog
	rw, err := Rewrite(prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(rw); err != nil {
		t.Fatal(err)
	}
	env := filters.Env{SFI: true}
	pkt := make([]byte, 64)
	if _, _, err := env.Exec(rw, pkt, machine.Checked); err != nil {
		t.Fatalf("sandboxed wild access faulted: %v", err)
	}
	// Unrewritten, the same program blocks the abstract machine.
	if _, _, err := env.Exec(prog, pkt, machine.Checked); err == nil {
		t.Fatal("wild access went unnoticed without SFI")
	}
}
