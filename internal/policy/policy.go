// Package policy defines the safety policies of the paper's two code
// consumers: the packet-filter infrastructure of §3 and the resource
// access service of §2, plus the SFI-segment policy used by the §3.1
// hybrid experiment. A policy packages the precondition ("calling
// convention"), the postcondition, and human-readable register
// conventions; the proof-formation rules ℒ it publishes are the core
// natural-deduction rules plus prover.Axioms.
//
// A note on the paper's "ri mod 2^64 = ri" conjuncts: in this
// implementation every expression already denotes a 64-bit machine
// word, so those well-formedness conjuncts are identically true and are
// omitted (see DESIGN.md, "trusted normalizer").
package policy

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
	"io"
	"sort"

	"repro/internal/logic"
)

// Policy is a published safety policy.
type Policy struct {
	// Name identifies the policy in PCC binaries; validation fails if
	// producer and consumer disagree.
	Name string
	// Pre is the precondition the consumer guarantees at invocation.
	Pre logic.Pred
	// Post is the postcondition required at RET (true for all of the
	// paper's experiments; tests exercise nontrivial ones).
	Post logic.Pred
	// Convention documents the register-passing convention.
	Convention string
	// Axioms are additional proof-formation rules this policy
	// publishes beyond the core set — the §3 "user-provided axioms
	// ... remembered for future sessions", made part of the contract
	// so producer and consumer agree on them by construction. The
	// consumer should vet them (see pcc.VetAxioms) before publishing:
	// an unsound axiom makes the whole guarantee vacuous.
	Axioms []*logic.Schema
}

// ExtraAxioms returns the policy's published schemas keyed by name,
// or nil.
func (p *Policy) ExtraAxioms() map[string]*logic.Schema {
	if len(p.Axioms) == 0 {
		return nil
	}
	out := make(map[string]*logic.Schema, len(p.Axioms))
	for _, s := range p.Axioms {
		out[s.Name] = s
	}
	return out
}

// Digest returns a SHA-256 digest of the policy's semantic content:
// its name, precondition, postcondition, and published axiom schemas.
// (Convention is human-readable documentation and excluded.) The
// serialization is length-framed, so no two distinct policies — even
// ones with adversarially chosen names — share a serialization, and
// equal digests mean (up to SHA-256 collision resistance) semantically
// identical policies that accept exactly the same set of PCC binaries.
// Safety-relevant identity, such as the proof-cache key in
// internal/kernel, must be derived from this full digest; see
// pcc.ValidationKey.
func (p *Policy) Digest() [sha256.Size]byte {
	h := sha256.New()
	writeString(h, p.Name)
	writePred(h, p.Pre)
	writePred(h, p.Post)
	axioms := append([]*logic.Schema(nil), p.Axioms...)
	sort.Slice(axioms, func(i, j int) bool { return axioms[i].Name < axioms[j].Name })
	writeLen(h, len(axioms))
	for _, s := range axioms {
		writeString(h, s.Name)
		writeLen(h, len(s.Params))
		for _, prm := range s.Params {
			writeString(h, prm)
		}
		writeLen(h, len(s.Prems))
		for _, prem := range s.Prems {
			writePred(h, prem)
		}
		writePred(h, s.Concl)
	}
	var d [sha256.Size]byte
	h.Sum(d[:0])
	return d
}

// Fingerprint returns the first 64 bits of Digest, for compact display
// and mismatch diagnostics. A 64-bit value admits brute-forced
// collisions, so it must never stand in for policy identity in a
// safety-relevant decision — use Digest there.
func (p *Policy) Fingerprint() uint64 {
	d := p.Digest()
	return binary.LittleEndian.Uint64(d[:8])
}

// writeLen frames a count or byte length into a digest.
func writeLen(h hash.Hash, n int) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(n))
	h.Write(buf[:])
}

// writeString frames a length-prefixed string into a digest.
func writeString(h hash.Hash, s string) {
	writeLen(h, len(s))
	io.WriteString(h, s)
}

// writePred frames a predicate into a digest, distinguishing nil from
// any printed form.
func writePred(h hash.Hash, pred logic.Pred) {
	if pred == nil {
		h.Write([]byte{0})
		return
	}
	h.Write([]byte{1})
	writeString(h, pred.String())
}

// Packet-filter calling convention (§3): the kernel passes the aligned
// packet address in r1, the packet length in r2, and the address of a
// 16-byte aligned scratch memory in r3; the boolean result is returned
// in r0.
const (
	RegPacket  = 1
	RegLen     = 2
	RegScratch = 3
	ScratchLen = 16
	MinPacket  = 64 // minimum Ethernet frame
)

// PacketFilter returns the §3 packet-filter safety policy:
//
//	Pre =  64 ≤ r2  ∧  r2 < 2^63
//	    ∧  ∀i. (0≤i ∧ i<r2 ∧ i&7=0) ⇒ rd(r1⊕i)
//	    ∧  ∀j. (0≤j ∧ j<16 ∧ j&7=0) ⇒ wr(r3⊕j)
//	    ∧  ∀i.∀j. (i<r2 ∧ j<16) ⇒ r1⊕i ≠ r3⊕j
//	Post = true
func PacketFilter() *Policy {
	r1 := logic.V("r1")
	r2 := logic.V("r2")
	r3 := logic.V("r3")
	i := logic.V("i")
	j := logic.V("j")

	pre := logic.Conj(
		logic.Ule(logic.C(MinPacket), r2),
		logic.Ult(r2, logic.C(1<<63)),
		logic.All("i", logic.Implies(
			logic.Conj(
				logic.Ule(logic.C(0), i),
				logic.Ult(i, r2),
				logic.Eq(logic.And2(i, logic.C(7)), logic.C(0)),
			),
			logic.RdP(logic.Add(r1, i)),
		)),
		logic.All("j", logic.Implies(
			logic.Conj(
				logic.Ule(logic.C(0), j),
				logic.Ult(j, logic.C(ScratchLen)),
				logic.Eq(logic.And2(j, logic.C(7)), logic.C(0)),
			),
			logic.WrP(logic.Add(r3, j)),
		)),
		logic.All("i", logic.All("j", logic.Implies(
			logic.Conj(
				logic.Ult(i, r2),
				logic.Ult(j, logic.C(ScratchLen)),
			),
			logic.Ne(logic.Add(r1, i), logic.Add(r3, j)),
		))),
	)

	return &Policy{
		Name: "packet-filter/v1",
		Pre:  pre,
		Post: logic.True,
		Convention: "r1: aligned packet address; r2: packet length (≥ 64); " +
			"r3: 16-byte aligned scratch; result in r0",
	}
}

// ResourceAccess returns the §2 resource-access policy over a
// two-word table entry whose address arrives in r0:
//
//	Pre_r = rd(r0) ∧ rd(r0⊕8) ∧ (sel(rm, r0) ≠ 0 ⇒ wr(r0⊕8))
//	Post  = true
//
// The tag word (at r0) is read-only; the data word (at r0⊕8) is
// writable exactly when the tag is non-zero.
func ResourceAccess() *Policy {
	r0 := logic.V("r0")
	rm := logic.V("rm")
	pre := logic.Conj(
		logic.RdP(r0),
		logic.RdP(logic.Add(r0, logic.C(8))),
		logic.Implies(
			logic.Ne(logic.SelE(rm, r0), logic.C(0)),
			logic.WrP(logic.Add(r0, logic.C(8))),
		),
	)
	return &Policy{
		Name:       "resource-access/v1",
		Pre:        pre,
		Post:       logic.True,
		Convention: "r0: aligned address of the {tag, data} table entry",
	}
}

// Semaphore returns the §2 "more involved safety requirements"
// policy: the table entry's tag word (at r0) is a semaphore the
// extension may manipulate, the data word (at r0⊕8) is its payload,
// and a simple postcondition requires that "the code releases the
// semaphore before returning":
//
//	Pre  = rd(r0) ∧ wr(r0) ∧ wr(r0⊕8)
//	Post = sel(rm, r0) = 0
//
// This is the paper's example of a policy "more abstract and
// fine-grained than memory protection": certification fails for any
// extension that can return with the lock held, with no run-time
// lock-leak detection needed.
func Semaphore() *Policy {
	r0 := logic.V("r0")
	pre := logic.Conj(
		logic.RdP(r0),
		logic.WrP(r0),
		logic.WrP(logic.Add(r0, logic.C(8))),
	)
	return &Policy{
		Name:       "semaphore/v1",
		Pre:        pre,
		Post:       logic.Eq(logic.SelE(logic.V("rm"), r0), logic.C(0)),
		Convention: "r0: aligned address of the {semaphore, data} entry; semaphore must be 0 at RET",
	}
}

// SFISegmentSize is the sandbox segment size of the §3.1 SFI
// experiment.
const SFISegmentSize = 2048

// SFISegment returns the §3.1 policy for SFI-rewritten filters: the
// kernel allocates packets on a 2048-byte boundary and the filter may
// read anywhere in the packet's segment and write anywhere in the
// scratch segment:
//
//	Pre =  ∀i. (i<2048 ∧ i&7=0) ⇒ rd((r1 & ~2047) ⊕ i)
//	    ∧  ∀j. (j<2048 ∧ j&7=0) ⇒ wr((r3 & ~2047) ⊕ j)
//	Post = true
func SFISegment() *Policy {
	mask := ^uint64(SFISegmentSize - 1)
	r1 := logic.V("r1")
	r3 := logic.V("r3")
	i := logic.V("i")
	j := logic.V("j")
	pre := logic.Conj(
		logic.All("i", logic.Implies(
			logic.Conj(
				logic.Ult(i, logic.C(SFISegmentSize)),
				logic.Eq(logic.And2(i, logic.C(7)), logic.C(0)),
			),
			logic.RdP(logic.Add(logic.And2(r1, logic.C(mask)), i)),
		)),
		logic.All("j", logic.Implies(
			logic.Conj(
				logic.Ult(j, logic.C(SFISegmentSize)),
				logic.Eq(logic.And2(j, logic.C(7)), logic.C(0)),
			),
			logic.WrP(logic.Add(logic.And2(r3, logic.C(mask)), j)),
		)),
	)
	return &Policy{
		Name:       "sfi-segment/v1",
		Pre:        pre,
		Post:       logic.True,
		Convention: "r1: packet address (2048-byte segment); r3: scratch segment address",
	}
}

// ByName returns the built-in policy with the given name, for the
// loader tools.
func ByName(name string) (*Policy, error) {
	switch name {
	case "packet-filter/v1":
		return PacketFilter(), nil
	case "resource-access/v1":
		return ResourceAccess(), nil
	case "sfi-segment/v1":
		return SFISegment(), nil
	case "semaphore/v1":
		return Semaphore(), nil
	}
	return nil, fmt.Errorf("policy: unknown policy %q", name)
}
