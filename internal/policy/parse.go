package policy

import (
	"fmt"
	"strings"

	"repro/internal/logic"
)

// Parse reads a safety policy from its textual form, so consumers can
// publish policies as plain files and the tools can load them:
//
//	name:       capability-table/v2
//	convention: r0 holds the entry address
//	pre:        rd(r0) /\ rd(r0 + 8)
//	post:       true
//
// Lines starting with '#' are comments. A multi-line predicate
// continues on indented lines.
func Parse(src string) (*Policy, error) {
	fields := map[string]string{}
	var axiomLines []string
	var current string
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimRight(raw, " \t")
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		if line != trimmed && current != "" {
			// Indented continuation line.
			if current == "axiom" {
				axiomLines[len(axiomLines)-1] += " " + trimmed
			} else {
				fields[current] += " " + trimmed
			}
			continue
		}
		key, val, ok := strings.Cut(trimmed, ":")
		if !ok {
			return nil, fmt.Errorf("policy: line %d: expected 'key: value'", lineNo+1)
		}
		key = strings.TrimSpace(key)
		switch key {
		case "name", "convention", "pre", "post":
		case "axiom":
			axiomLines = append(axiomLines, strings.TrimSpace(val))
			current = key
			continue
		default:
			return nil, fmt.Errorf("policy: line %d: unknown key %q", lineNo+1, key)
		}
		if _, dup := fields[key]; dup {
			return nil, fmt.Errorf("policy: line %d: duplicate key %q", lineNo+1, key)
		}
		fields[key] = strings.TrimSpace(val)
		current = key
	}

	if fields["name"] == "" {
		return nil, fmt.Errorf("policy: missing 'name'")
	}
	if fields["pre"] == "" {
		return nil, fmt.Errorf("policy: missing 'pre'")
	}
	pre, err := logic.ParsePred(fields["pre"])
	if err != nil {
		return nil, fmt.Errorf("policy: pre: %w", err)
	}
	post := logic.Pred(logic.True)
	if p, ok := fields["post"]; ok && p != "" {
		post, err = logic.ParsePred(p)
		if err != nil {
			return nil, fmt.Errorf("policy: post: %w", err)
		}
	}
	if err := checkStateVars(pre, "pre"); err != nil {
		return nil, err
	}
	if err := checkStateVars(post, "post"); err != nil {
		return nil, err
	}
	var axioms []*logic.Schema
	for _, line := range axiomLines {
		sc, err := parseAxiom(line)
		if err != nil {
			return nil, err
		}
		axioms = append(axioms, sc)
	}
	return &Policy{
		Name:       fields["name"],
		Pre:        pre,
		Post:       post,
		Convention: fields["convention"],
		Axioms:     axioms,
	}, nil
}

// parseAxiom reads one published schema in the form
//
//	name($a, $b) : prem1 ; prem2 |- concl
//
// with an empty premise list written as `|- concl` directly after the
// colon.
func parseAxiom(line string) (*logic.Schema, error) {
	head, body, ok := strings.Cut(line, ":")
	if !ok {
		return nil, fmt.Errorf("policy: axiom %q: expected 'name(params) : ... |- concl'", line)
	}
	head = strings.TrimSpace(head)
	name, paramPart, ok := strings.Cut(head, "(")
	if !ok || !strings.HasSuffix(paramPart, ")") {
		return nil, fmt.Errorf("policy: axiom %q: expected parameter list", line)
	}
	name = strings.TrimSpace(name)
	var params []string
	if inner := strings.TrimSpace(strings.TrimSuffix(paramPart, ")")); inner != "" {
		for _, p := range strings.Split(inner, ",") {
			params = append(params, strings.TrimSpace(p))
		}
	}
	premPart, conclPart, ok := strings.Cut(body, "|-")
	if !ok {
		return nil, fmt.Errorf("policy: axiom %q: missing '|-'", name)
	}
	var prems []logic.Pred
	if pp := strings.TrimSpace(premPart); pp != "" {
		for _, ps := range strings.Split(pp, ";") {
			prem, err := logic.ParsePred(strings.TrimSpace(ps))
			if err != nil {
				return nil, fmt.Errorf("policy: axiom %q premise: %w", name, err)
			}
			prems = append(prems, prem)
		}
	}
	concl, err := logic.ParsePred(strings.TrimSpace(conclPart))
	if err != nil {
		return nil, fmt.Errorf("policy: axiom %q conclusion: %w", name, err)
	}
	return &logic.Schema{Name: name, Params: params, Prems: prems, Concl: concl}, nil
}

// stateVars are the names a policy predicate may mention free.
var stateVars = func() map[string]bool {
	m := map[string]bool{"rm": true}
	for i := 0; i < 11; i++ {
		m[fmt.Sprintf("r%d", i)] = true
	}
	return m
}()

func checkStateVars(p logic.Pred, which string) error {
	for v := range logic.FreeVars(p) {
		if !stateVars[v] {
			return fmt.Errorf("policy: %s: free variable %q is not a machine-state variable", which, v)
		}
	}
	return nil
}

// Format renders a policy in the file syntax Parse accepts.
func Format(p *Policy) string {
	var b strings.Builder
	fmt.Fprintf(&b, "name:       %s\n", p.Name)
	if p.Convention != "" {
		fmt.Fprintf(&b, "convention: %s\n", p.Convention)
	}
	fmt.Fprintf(&b, "pre:        %s\n", p.Pre)
	fmt.Fprintf(&b, "post:       %s\n", p.Post)
	for _, sc := range p.Axioms {
		prems := make([]string, len(sc.Prems))
		for i, prem := range sc.Prems {
			prems[i] = prem.String()
		}
		fmt.Fprintf(&b, "axiom:      %s(%s) : %s |- %s\n",
			sc.Name, strings.Join(sc.Params, ", "),
			strings.Join(prems, " ; "), sc.Concl)
	}
	return b.String()
}
