package policy

import (
	"crypto/sha256"
	"encoding/binary"
	"testing"

	"repro/internal/logic"
)

func TestByName(t *testing.T) {
	for _, name := range []string{"packet-filter/v1", "resource-access/v1", "sfi-segment/v1"} {
		p, err := ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Name != name {
			t.Errorf("%s: got %q", name, p.Name)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown policy accepted")
	}
}

// TestPreconditionFreeVars checks each precondition only mentions the
// machine-state variables its convention documents.
func TestPreconditionFreeVars(t *testing.T) {
	cases := []struct {
		pol  *Policy
		want map[string]bool
	}{
		{PacketFilter(), map[string]bool{"r1": true, "r2": true, "r3": true}},
		{ResourceAccess(), map[string]bool{"r0": true, "rm": true}},
		{SFISegment(), map[string]bool{"r1": true, "r3": true}},
	}
	for _, c := range cases {
		got := logic.FreeVars(c.pol.Pre)
		for v := range got {
			if !c.want[v] {
				t.Errorf("%s: unexpected free variable %q", c.pol.Name, v)
			}
		}
		for v := range c.want {
			if !got[v] {
				t.Errorf("%s: missing variable %q", c.pol.Name, v)
			}
		}
	}
}

// TestPreconditionsSatisfiable evaluates the quantifier-free part of
// each precondition in a model of the intended calling convention, as
// a sanity check that the predicates are not vacuously false.
func TestPacketFilterPreconditionShape(t *testing.T) {
	pre := logic.NormPred(PacketFilter().Pre)
	conjs := logic.Conjuncts(pre)
	if len(conjs) < 4 {
		t.Fatalf("precondition collapsed: %s", pre)
	}
	// The length bound must survive normalization.
	found := false
	for _, c := range conjs {
		if logic.PredEqual(c, logic.Ule(logic.C(MinPacket), logic.V("r2"))) {
			found = true
		}
	}
	if !found {
		t.Errorf("missing 64 ≤ r2 conjunct in %s", pre)
	}
}

func TestResourceAccessPreMatchesPaper(t *testing.T) {
	// Pre_r = rd(r0) ∧ rd(r0⊕8) ∧ (sel(rm,r0) ≠ 0 ⇒ wr(r0⊕8))
	pre := ResourceAccess().Pre
	conjs := logic.Conjuncts(logic.NormPred(pre))
	if len(conjs) != 3 {
		t.Fatalf("Pre_r has %d conjuncts, want 3: %s", len(conjs), pre)
	}
	if !logic.PredEqual(conjs[0], logic.RdP(logic.V("r0"))) {
		t.Errorf("first conjunct: %s", conjs[0])
	}
	if _, ok := conjs[2].(logic.Imp); !ok {
		t.Errorf("third conjunct not conditional: %s", conjs[2])
	}
}

func TestPoliciesPostTrue(t *testing.T) {
	for _, p := range []*Policy{PacketFilter(), ResourceAccess(), SFISegment()} {
		if !logic.PredEqual(p.Post, logic.True) {
			t.Errorf("%s: Post = %s, the paper uses true", p.Name, p.Post)
		}
		if p.Convention == "" {
			t.Errorf("%s: missing convention", p.Name)
		}
	}
}

func TestFingerprintStableAndDiscriminating(t *testing.T) {
	base := PacketFilter().Fingerprint()
	if base != PacketFilter().Fingerprint() {
		t.Fatal("fingerprint is not deterministic")
	}
	fps := map[uint64]string{}
	for _, p := range []*Policy{PacketFilter(), ResourceAccess(), SFISegment(), Semaphore()} {
		fp := p.Fingerprint()
		if prev, dup := fps[fp]; dup {
			t.Errorf("%s and %s share fingerprint %#x", p.Name, prev, fp)
		}
		fps[fp] = p.Name
	}

	// Same name, different contract: distinct fingerprints.
	weak := PacketFilter()
	weak.Pre = logic.True
	if weak.Fingerprint() == base {
		t.Error("weakened precondition kept the fingerprint")
	}
	renamed := PacketFilter()
	renamed.Name = "packet-filter/v2"
	if renamed.Fingerprint() == base {
		t.Error("renamed policy kept the fingerprint")
	}

	// Convention is documentation: it must NOT affect the fingerprint.
	doc := PacketFilter()
	doc.Convention = "different prose"
	if doc.Fingerprint() != base {
		t.Error("convention text changed the fingerprint")
	}

	// Axioms are contract: order-independent, content-sensitive.
	ax1 := &logic.Schema{Name: "a1", Params: []string{"$x"},
		Concl: logic.Eq(logic.V("$x"), logic.V("$x"))}
	ax2 := &logic.Schema{Name: "a2", Params: []string{"$x"},
		Concl: logic.Ule(logic.V("$x"), logic.V("$x"))}
	pa := PacketFilter()
	pa.Axioms = []*logic.Schema{ax1, ax2}
	pb := PacketFilter()
	pb.Axioms = []*logic.Schema{ax2, ax1}
	if pa.Fingerprint() != pb.Fingerprint() {
		t.Error("axiom order changed the fingerprint")
	}
	if pa.Fingerprint() == base {
		t.Error("published axioms did not change the fingerprint")
	}
}

// TestDigestFullWidthAndFramed pins the properties the proof cache's
// safety rests on: policy identity is the full SHA-256 content digest
// (Fingerprint is only its 64-bit truncation, for display), and the
// serialization is length-framed so field boundaries cannot be forged
// by adversarially chosen names.
func TestDigestFullWidthAndFramed(t *testing.T) {
	base := PacketFilter().Digest()
	if base != PacketFilter().Digest() {
		t.Fatal("digest is not deterministic")
	}
	if got, want := PacketFilter().Fingerprint(), binary.LittleEndian.Uint64(base[:8]); got != want {
		t.Errorf("Fingerprint %#x is not the truncation of Digest (%#x)", got, want)
	}
	seen := map[[sha256.Size]byte]string{}
	for _, p := range []*Policy{PacketFilter(), ResourceAccess(), SFISegment(), Semaphore()} {
		d := p.Digest()
		if prev, dup := seen[d]; dup {
			t.Errorf("%s and %s share a digest", p.Name, prev)
		}
		seen[d] = p.Name
	}

	// Length framing: moving a byte across a field boundary must change
	// the digest even though the concatenated content is identical.
	s1 := &logic.Schema{Name: "ax", Params: []string{"$ab", "$c"},
		Concl: logic.True}
	s2 := &logic.Schema{Name: "ax", Params: []string{"$a", "$bc"},
		Concl: logic.True}
	pa, pb := PacketFilter(), PacketFilter()
	pa.Axioms = []*logic.Schema{s1}
	pb.Axioms = []*logic.Schema{s2}
	if pa.Digest() == pb.Digest() {
		t.Error("shifting bytes across a param boundary kept the digest")
	}
	n1, n2 := PacketFilter(), PacketFilter()
	n1.Name, n2.Name = "x", "xy"
	if n1.Digest() == n2.Digest() {
		t.Error("name boundary is not framed")
	}
}
