// Certificate cost: the size of the safety evidence itself, per paper
// filter — proof bytes on the wire, decoded proof term nodes, and the
// recomputed VC's node count. This is the baseline that proof-size
// engineering (ACC-style certificate compression, see PAPERS.md) must
// regress against: validation *time* already has a trajectory in the
// stages section, this gives certificate *size* one too. The same
// numbers stream live from the kernel as the pcc_proof_bytes /
// pcc_vc_nodes value histograms recorded at each install.
package bench

import (
	"fmt"
	"strings"

	pcc "repro"
	"repro/internal/filters"
	"repro/internal/policy"
)

// CertCostRow is one filter's certificate cost, from a full
// certify→validate round trip.
type CertCostRow struct {
	Filter     filters.Filter
	CodeBytes  int // native code section, bytes
	ProofBytes int // encoded proof section, bytes
	ProofNodes int // decoded proof term, LF nodes
	VCNodes    int // recomputed safety predicate, LF nodes
	CheckSteps int // LF inference steps to check the proof
}

// ProofPerCode is the certificate's wire overhead relative to the code
// it certifies — the paper's "proof/code" ratio, the number ACC-style
// compression wants below 1.
func (r CertCostRow) ProofPerCode() float64 {
	if r.CodeBytes == 0 {
		return 0
	}
	return float64(r.ProofBytes) / float64(r.CodeBytes)
}

// CertCost certifies and validates the four paper filters and reports
// each certificate's size metrics. Sizes are deterministic (no timing),
// so one validation per filter suffices.
func CertCost() ([]CertCostRow, error) {
	pol := policy.PacketFilter()
	rows := make([]CertCostRow, 0, len(filters.All))
	for _, f := range filters.All {
		cert, err := pcc.Certify(filters.Source(f), pol, nil)
		if err != nil {
			return nil, fmt.Errorf("%v: %w", f, err)
		}
		_, stats, err := pcc.Validate(cert.Binary, pol)
		if err != nil {
			return nil, fmt.Errorf("%v: %w", f, err)
		}
		rows = append(rows, CertCostRow{
			Filter:     f,
			CodeBytes:  cert.Layout.CodeLen,
			ProofBytes: stats.ProofBytes,
			ProofNodes: stats.ProofNodes,
			VCNodes:    stats.VCNodes,
			CheckSteps: stats.CheckSteps,
		})
	}
	return rows, nil
}

// FormatCertCost renders the certificate-cost table.
func FormatCertCost(rows []CertCostRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Certificate cost: size of the safety evidence per filter\n")
	fmt.Fprintf(&b, "%-10s %10s %12s %12s %10s %12s %12s\n",
		"", "code (B)", "proof (B)", "proof/code", "VC nodes", "proof nodes", "check steps")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %10d %12d %11.1fx %10d %12d %12d\n",
			r.Filter, r.CodeBytes, r.ProofBytes, r.ProofPerCode(),
			r.VCNodes, r.ProofNodes, r.CheckSteps)
	}
	fmt.Fprintf(&b, "(live counterparts: pcc_proof_bytes / pcc_vc_nodes value histograms per install)\n")
	return b.String()
}
