// Validation-pipeline experiment: the Figure-9 story at consumer
// scale. Figure 9 amortizes ONE filter's validation over a packet
// stream; a kernel serving many users amortizes it over REPEATED
// installs (proof cache) and over CORES (concurrent batch
// validation). This experiment reports both levers: cold vs. warm
// install cost, and serial vs. worker-pool batch wall-clock for the
// four paper filters.
package bench

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	pcc "repro"
	"repro/internal/filters"
	"repro/internal/kernel"
	"repro/internal/policy"
)

// PipelineResult reports the validation-pipeline experiment.
type PipelineResult struct {
	// Filters is the batch size (the four paper filters).
	Filters int
	// ColdMicros / WarmMicros are per-install averages: full
	// validation vs. proof-cache hit.
	ColdMicros float64
	WarmMicros float64
	// CacheSpeedup = ColdMicros / WarmMicros.
	CacheSpeedup float64
	// SerialMS / ParallelMS are all-cold batch wall-clock times:
	// one-at-a-time InstallFilter vs. InstallFilterBatch across
	// Workers validators (best of the measurement rounds).
	SerialMS   float64
	ParallelMS float64
	// ParallelSpeedup = SerialMS / ParallelMS; bounded by
	// min(Workers, Filters) and ~1.0 on a single core.
	ParallelSpeedup float64
	// Workers is GOMAXPROCS at measurement time.
	Workers int
	// Stats is the warm kernel's final accounting (cache hits etc.).
	Stats kernel.Stats
}

// Pipeline certifies the four paper filters and measures the
// validation pipeline over `rounds` measurement rounds (best-of, as
// for the paper's one-time costs on a multiprogrammed host).
func Pipeline(rounds int) (*PipelineResult, error) {
	if rounds < 1 {
		rounds = 1
	}
	pol := policy.PacketFilter()
	var reqs []kernel.InstallRequest
	for _, f := range filters.All {
		cert, err := pcc.Certify(filters.Source(f), pol, nil)
		if err != nil {
			return nil, fmt.Errorf("%v: %w", f, err)
		}
		reqs = append(reqs, kernel.InstallRequest{Owner: f.String(), Binary: cert.Binary})
	}
	res := &PipelineResult{Filters: len(reqs), Workers: runtime.GOMAXPROCS(0)}

	// Cold vs. warm on one long-lived kernel.
	k := kernel.New()
	start := time.Now()
	for _, r := range reqs {
		if err := k.InstallFilter(r.Owner, r.Binary); err != nil {
			return nil, err
		}
	}
	res.ColdMicros = float64(time.Since(start).Microseconds()) / float64(len(reqs))
	warmBest := time.Duration(1 << 62)
	for round := 0; round < rounds; round++ {
		start = time.Now()
		for _, r := range reqs {
			if err := k.InstallFilter(r.Owner, r.Binary); err != nil {
				return nil, err
			}
		}
		if d := time.Since(start); d < warmBest {
			warmBest = d
		}
	}
	// One warm batch too, so Stats shows batch accounting as well.
	for _, err := range k.InstallFilterBatch(reqs) {
		if err != nil {
			return nil, err
		}
	}
	res.WarmMicros = float64(warmBest.Microseconds()) / float64(len(reqs))
	if res.WarmMicros > 0 {
		res.CacheSpeedup = res.ColdMicros / res.WarmMicros
	}
	res.Stats = k.Stats()

	// Serial vs. parallel all-cold batches on cache-disabled kernels.
	serialBest, parallelBest := time.Duration(1<<62), time.Duration(1<<62)
	for round := 0; round < rounds; round++ {
		ks := kernel.NewWithCacheSize(0)
		start = time.Now()
		for _, r := range reqs {
			if err := ks.InstallFilter(r.Owner, r.Binary); err != nil {
				return nil, err
			}
		}
		if d := time.Since(start); d < serialBest {
			serialBest = d
		}

		kp := kernel.NewWithCacheSize(0)
		start = time.Now()
		for _, err := range kp.InstallFilterBatch(reqs) {
			if err != nil {
				return nil, err
			}
		}
		if d := time.Since(start); d < parallelBest {
			parallelBest = d
		}
	}
	res.SerialMS = serialBest.Seconds() * 1000
	res.ParallelMS = parallelBest.Seconds() * 1000
	if res.ParallelMS > 0 {
		res.ParallelSpeedup = res.SerialMS / res.ParallelMS
	}
	return res, nil
}

// FormatPipeline renders the experiment like the other paperbench
// sections.
func FormatPipeline(r *PipelineResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Validation pipeline (proof cache + concurrent batch install)\n")
	fmt.Fprintf(&b, "  cold install:  %8.0f µs/filter (full VC generation + LF check)\n", r.ColdMicros)
	fmt.Fprintf(&b, "  warm install:  %8.1f µs/filter (content-addressed cache hit)\n", r.WarmMicros)
	fmt.Fprintf(&b, "  cache speedup: %8.0fx\n", r.CacheSpeedup)
	fmt.Fprintf(&b, "  all-cold batch of %d: serial %.2f ms, concurrent %.2f ms on %d worker(s) — %.2fx\n",
		r.Filters, r.SerialMS, r.ParallelMS, r.Workers, r.ParallelSpeedup)
	fmt.Fprintf(&b, "  cache: %d hits / %d misses / %d evictions; queue wait %.0f µs total\n",
		r.Stats.CacheHits, r.Stats.CacheMisses, r.Stats.CacheEvictions, r.Stats.QueueWaitMicros)
	return b.String()
}
