package bench

import (
	"fmt"
	"strings"

	"repro/internal/filters"
)

// Paper reference values, for side-by-side reporting. Figure 8 values
// are read off the published bar chart; Figure 9 crossovers and Table 1
// are stated in the text.

// PaperFig8 holds the paper's Figure 8 per-packet microseconds,
// indexed [filter-1][approach].
var PaperFig8 = [4][numApproaches]float64{
	{0.78, 0.33, 0.11, 0.08}, // Filter 1
	{1.46, 0.24, 0.18, 0.15}, // Filter 2
	{1.71, 0.31, 0.25, 0.20}, // Filter 3
	{1.92, 0.33, 0.23, 0.17}, // Filter 4
}

// PaperTable1 holds the paper's Table 1 rows: instructions, binary
// size (bytes), validation time (µs), heap cost (KB).
var PaperTable1 = [4][4]float64{
	{8, 385, 780, 5.5},
	{15, 516, 1070, 8.7},
	{47, 1024, 2350, 24.6},
	{28, 814, 1710, 15.1},
}

// PaperFig9Crossovers holds the paper's Figure 9 amortization points
// for Filter 4 (packets until PCC beats each approach).
var PaperFig9Crossovers = map[Approach]int{BPF: 1200, M3View: 10500, SFI: 28000}

// Paper checksum experiment (§4).
const (
	PaperChecksumInstrs     = 39
	PaperChecksumLoop       = 8
	PaperChecksumBinary     = 1610
	PaperChecksumValidateMS = 3.6
	PaperChecksumSpeedup    = 2.0
)

// FormatFig8 renders the Figure 8 reproduction with the paper's values
// alongside.
func FormatFig8(rows []Fig8Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8: average per-packet run time (µs, modeled 175-MHz Alpha)\n")
	fmt.Fprintf(&b, "%-10s", "")
	for _, a := range Approaches {
		fmt.Fprintf(&b, "  %8s (paper)", a)
	}
	fmt.Fprintf(&b, "   accepted\n")
	for i, row := range rows {
		fmt.Fprintf(&b, "%-10s", row.Filter)
		for _, a := range Approaches {
			fmt.Fprintf(&b, "  %8.2f (%5.2f)", row.Micros[a], PaperFig8[i][a])
		}
		fmt.Fprintf(&b, "   %d\n", row.Accepted)
	}
	fmt.Fprintf(&b, "ratios vs PCC:\n")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-10s", row.Filter)
		for _, a := range Approaches {
			fmt.Fprintf(&b, "  %8.2fx", row.Micros[a]/row.Micros[PCC])
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}

// FormatTable1 renders the Table 1 reproduction.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: proof size and validation cost for PCC packet filters\n")
	fmt.Fprintf(&b, "%-10s %14s %20s %22s %16s %12s\n",
		"", "instructions", "binary size (B)", "validation (µs)", "heap (KB)", "proof/code")
	for i, r := range rows {
		fmt.Fprintf(&b, "%-10s %6d (%3.0f) %12d (%4.0f) %14.0f (%4.0f) %9.1f (%4.1f) %11.1fx\n",
			r.Filter,
			r.Instructions, PaperTable1[i][0],
			r.BinarySize, PaperTable1[i][1],
			float64(r.Validation.Microseconds()), PaperTable1[i][2],
			r.HeapKB, PaperTable1[i][3],
			float64(r.ProofBytes)/float64(r.CodeBytes))
	}
	fmt.Fprintf(&b, "(parenthesized: the paper's values; host validation time vs 175-MHz Alpha)\n")
	return b.String()
}

// FormatFig9 renders the Figure 9 reproduction.
func FormatFig9(r *Fig9Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9: startup cost amortization for Filter 4\n")
	fmt.Fprintf(&b, "startup (ms):   ")
	for _, a := range Approaches {
		fmt.Fprintf(&b, "  %s %.3f", a, r.StartupMS[a])
	}
	fmt.Fprintf(&b, "\nper packet (µs):")
	for _, a := range Approaches {
		fmt.Fprintf(&b, "  %s %.2f", a, r.PerPacketUS[a])
	}
	fmt.Fprintf(&b, "\n\n%10s", "packets")
	for _, a := range Approaches {
		fmt.Fprintf(&b, "%12s", a)
	}
	fmt.Fprintf(&b, "\n")
	for _, pt := range r.Curve {
		fmt.Fprintf(&b, "%10d", pt.Packets)
		for _, a := range Approaches {
			fmt.Fprintf(&b, "%12.2f", pt.MS[a])
		}
		fmt.Fprintf(&b, "\n")
	}
	// A small ASCII rendering of the published plot: cumulative cost
	// (ms) against packets processed.
	fmt.Fprintf(&b, "\n")
	maxMS := 0.0
	for _, pt := range r.Curve {
		for _, a := range Approaches {
			if pt.MS[a] > maxMS {
				maxMS = pt.MS[a]
			}
		}
	}
	const width = 60
	glyph := [numApproaches]byte{'b', 'm', 's', 'P'}
	fmt.Fprintf(&b, "cumulative cost, 0..%.0f ms (b=BPF m=M3 s=SFI P=PCC):\n", maxMS)
	for _, pt := range r.Curve {
		row := make([]byte, width+1)
		for i := range row {
			row[i] = ' '
		}
		for _, a := range Approaches {
			col := int(pt.MS[a] / maxMS * width)
			if col > width {
				col = width
			}
			if row[col] == ' ' {
				row[col] = glyph[a]
			} else {
				row[col] = '*' // overlapping series
			}
		}
		fmt.Fprintf(&b, "%7d |%s\n", pt.Packets, string(row))
	}

	fmt.Fprintf(&b, "\ncrossover points (packets until PCC wins):\n")
	for _, a := range Approaches {
		if a == PCC {
			continue
		}
		fmt.Fprintf(&b, "  vs %-8s %8d   (paper: %d)\n",
			a, r.CrossoverPackets[a], PaperFig9Crossovers[a])
	}
	return b.String()
}

// FormatFig7 renders the Figure 7 layout reproduction.
func FormatFig7(cert interface{ String() string }) string {
	return "Figure 7: PCC binary layout for the resource access example\n" +
		"  ours:  " + cert.String() + "\n" +
		"  paper: native code [0,45) | relocation [45,220) | proof [220,340) | total 340 bytes\n"
}

// FormatChecksum renders the §4 checksum experiment.
func FormatChecksum(r *ChecksumResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "IP-checksum loop experiment (§4)\n")
	fmt.Fprintf(&b, "  instructions:      %d (paper: %d)\n", r.Instructions, PaperChecksumInstrs)
	fmt.Fprintf(&b, "  core loop:         %d (paper: %d)\n", r.LoopInstrs, PaperChecksumLoop)
	fmt.Fprintf(&b, "  PCC binary bytes:  %d (paper: %d)\n", r.BinarySize, PaperChecksumBinary)
	fmt.Fprintf(&b, "  validation:        %.2f ms (paper: %.1f ms)\n",
		r.Validation.Seconds()*1000, PaperChecksumValidateMS)
	fmt.Fprintf(&b, "  speedup vs C loop: %.2fx (paper: %.1fx)\n", r.SpeedupVsC, PaperChecksumSpeedup)
	return b.String()
}

// ShapeCheck verifies the qualitative claims of the evaluation hold in
// a Fig8 reproduction; it returns a list of violated claims (empty
// when the shape matches the paper).
func ShapeCheck(rows []Fig8Row) []string {
	var bad []string
	for _, row := range rows {
		if !(row.Micros[PCC] <= row.Micros[SFI] &&
			row.Micros[SFI] <= row.Micros[M3View] &&
			row.Micros[M3View] <= row.Micros[BPF]) {
			bad = append(bad, fmt.Sprintf("%v: ordering PCC ≤ SFI ≤ M3 ≤ BPF violated: %v",
				row.Filter, row.Micros))
		}
		bpfRatio := row.Micros[BPF] / row.Micros[PCC]
		if bpfRatio < 5 || bpfRatio > 25 {
			bad = append(bad, fmt.Sprintf("%v: BPF/PCC = %.1fx, expected ~10x", row.Filter, bpfRatio))
		}
		sfiRatio := row.Micros[SFI] / row.Micros[PCC]
		if sfiRatio < 1.02 || sfiRatio > 2.6 {
			bad = append(bad, fmt.Sprintf("%v: SFI/PCC = %.2fx, expected ~1.25x", row.Filter, sfiRatio))
		}
		m3Ratio := row.Micros[M3View] / row.Micros[PCC]
		if m3Ratio < 1.3 || m3Ratio > 8 {
			bad = append(bad, fmt.Sprintf("%v: M3/PCC = %.2fx, expected ~2-4x", row.Filter, m3Ratio))
		}
	}
	// Per-packet cost must grow with filter complexity for PCC.
	if len(rows) == 4 && !(rows[0].Micros[PCC] < rows[3].Micros[PCC]) {
		bad = append(bad, "Filter 4 not costlier than Filter 1 under PCC")
	}
	return bad
}

var _ = filters.All // keep the import explicit for documentation links
