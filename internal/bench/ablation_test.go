package bench

import (
	"strings"
	"testing"
)

func TestEncodingAblation(t *testing.T) {
	rows, err := EncodingAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.DAGBytes >= r.TreeBytes {
			t.Errorf("%v: DAG (%d B) not smaller than tree (%d B)",
				r.Filter, r.DAGBytes, r.TreeBytes)
		}
		// Sharing should buy at least 3x on these proofs.
		if ratio := float64(r.TreeBytes) / float64(r.DAGBytes); ratio < 3 {
			t.Errorf("%v: sharing only %.1fx", r.Filter, ratio)
		}
	}
	out := FormatEncodingAblation(rows)
	if !strings.Contains(out, "DAG") {
		t.Errorf("bad format:\n%s", out)
	}
}

func TestCostModelSensitivity(t *testing.T) {
	rows, err := CostModelSensitivity(1500, []int{10, 18, 25, 40})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.ShapeHolds {
			t.Errorf("dispatch=%d: Figure 8 ordering broke", r.Dispatch)
		}
		// The BPF/PCC gap must grow with dispatch cost and stay an
		// order of magnitude at the calibrated value.
		if r.Dispatch >= 18 && r.BPFOverPCC[3] < 5 {
			t.Errorf("dispatch=%d: BPF/PCC only %.1fx on Filter 4",
				r.Dispatch, r.BPFOverPCC[3])
		}
	}
	for i := 1; i < len(rows); i++ {
		for f := 0; f < 4; f++ {
			if rows[i].BPFOverPCC[f] <= rows[i-1].BPFOverPCC[f] {
				t.Errorf("ratio not monotone in dispatch cost (filter %d)", f+1)
			}
		}
	}
	_ = FormatCostSensitivity(rows)
}

func TestM3CheckElimAblation(t *testing.T) {
	rows, err := M3CheckElimAblation(1500)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.OptUS > r.NaiveUS {
			t.Errorf("%v: check elimination slowed M3 down", r.Filter)
		}
		if r.OptUS <= r.PCCUS {
			t.Errorf("%v: optimized M3 (%.2f) beat PCC (%.2f) — cost model broken",
				r.Filter, r.OptUS, r.PCCUS)
		}
	}
	_ = FormatM3CheckElim(rows)
}
