// Multi-goroutine dispatch scaling: the experiment behind the
// lock-free filter table. One shared kernel on the compiled backend,
// the four paper filters installed through the full certify→validate
// path, and the same n-packet trace dispatched through vectorized
// DeliverPackets by 1, 2, 4, and 8 goroutines pulling batches from a
// shared work queue. With dispatch taking no lock (epoch-pinned
// snapshot reads, per-shard statistics), throughput scales with
// goroutines up to the host's cores and — the other half of the claim
// — does NOT collapse past them: extra goroutines contending on a
// dispatch mutex would convoy; contending on nothing, they just
// time-slice. Verdicts are cross-checked against the pure-Go
// reference census in every configuration, so a torn snapshot or a
// lost accept can never be reported as throughput.
package bench

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	pcc "repro"
	"repro/internal/filters"
	"repro/internal/kernel"
)

// ScalingGoroutines is the concurrency ladder DispatchScaling climbs.
var ScalingGoroutines = []int{1, 2, 4, 8}

// ScalingTrials mirrors DispatchTrials: interleaved timing rounds per
// rung, best kept, so every rung gets the same shot at the host's
// fast state.
const ScalingTrials = 3

// ScalingRow is one rung's measured throughput: n packets dispatched
// through all installed filters by Goroutines workers sharing one
// kernel.
type ScalingRow struct {
	Goroutines int
	Packets    int
	Filters    int
	Wall       time.Duration
	Accepted   int // total (packet, filter) accepts — reference-checked
}

// NsPerPacket is the host cost of one packet through all filters at
// this concurrency.
func (r ScalingRow) NsPerPacket() float64 {
	if r.Packets == 0 {
		return 0
	}
	return float64(r.Wall.Nanoseconds()) / float64(r.Packets)
}

// PPS is the aggregate host packets-per-second at this concurrency.
func (r ScalingRow) PPS() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Packets) / r.Wall.Seconds()
}

// DispatchScaling measures vectorized compiled-backend dispatch
// throughput at each rung of ScalingGoroutines over an n-packet
// trace. All rungs share one kernel instance — the point is the
// shared filter table, not per-worker kernels — and every rung
// dispatches the full trace, so rows are directly comparable.
func DispatchScaling(n int) ([]ScalingRow, error) {
	pkts := Trace(n)
	raw := make([][]byte, len(pkts))
	for i, p := range pkts {
		raw[i] = p.Data
	}
	wantAccepts := 0
	for _, p := range pkts {
		for _, f := range filters.All {
			if filters.Reference(f, p.Data) {
				wantAccepts++
			}
		}
	}
	// Pre-slice the trace into the batches the workers will pull, so
	// the timed region is dispatch, not slicing arithmetic.
	var batches [][][]byte
	for lo := 0; lo < len(raw); lo += DispatchBatchSize {
		hi := lo + DispatchBatchSize
		if hi > len(raw) {
			hi = len(raw)
		}
		batches = append(batches, raw[lo:hi])
	}

	k := kernel.New()
	if err := k.SetBackend(kernel.BackendCompiled); err != nil {
		return nil, err
	}
	for _, f := range filters.All {
		cert, err := pcc.Certify(filters.Source(f), k.FilterPolicy(), nil)
		if err != nil {
			return nil, fmt.Errorf("%v: %w", f, err)
		}
		if err := k.InstallFilter(fmt.Sprintf("proc-%d", f), cert.Binary); err != nil {
			return nil, fmt.Errorf("%v: %w", f, err)
		}
	}

	rows := make([]ScalingRow, len(ScalingGoroutines))
	for trial := 0; trial < ScalingTrials; trial++ {
		for gi, g := range ScalingGoroutines {
			runtime.GC()
			var next, accepted atomic.Int64
			var wg sync.WaitGroup
			var firstErr atomic.Pointer[error]
			start := time.Now()
			for w := 0; w < g; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					var acc int64
					for {
						i := next.Add(1) - 1
						if int(i) >= len(batches) {
							break
						}
						out, err := k.DeliverPackets(batches[i])
						if err != nil {
							firstErr.CompareAndSwap(nil, &err)
							return
						}
						for _, row := range out {
							acc += int64(len(row))
						}
					}
					accepted.Add(acc)
				}()
			}
			wg.Wait()
			wall := time.Since(start)
			if ep := firstErr.Load(); ep != nil {
				return nil, *ep
			}
			if int(accepted.Load()) != wantAccepts {
				return nil, fmt.Errorf("scaling g=%d: %d accepts, reference says %d",
					g, accepted.Load(), wantAccepts)
			}
			if trial == 0 || wall < rows[gi].Wall {
				rows[gi] = ScalingRow{
					Goroutines: g,
					Packets:    len(pkts),
					Filters:    len(filters.All),
					Wall:       wall,
					Accepted:   wantAccepts,
				}
			}
		}
	}
	return rows, nil
}

// ParallelSpeedup is the headline ratio: aggregate packets/sec at the
// widest rung over packets/sec single-goroutine. On an unloaded
// multi-core host this approaches min(goroutines, cores); on a
// single-core host its meaning degrades to "added goroutines cost
// ~nothing" and hovers near 1. Zero when either rung is missing.
func ParallelSpeedup(rows []ScalingRow) float64 {
	var base, widest float64
	maxG := 0
	for _, r := range rows {
		if r.Goroutines == 1 {
			base = r.PPS()
		}
		if r.Goroutines > maxG {
			maxG, widest = r.Goroutines, r.PPS()
		}
	}
	if base <= 0 {
		return 0
	}
	return widest / base
}

// FormatScaling renders the ladder with the headline speedup and the
// GOMAXPROCS context that makes the number interpretable.
func FormatScaling(rows []ScalingRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Dispatch scaling: goroutines × shared kernel (compiled, batch%d, GOMAXPROCS=%d)\n",
		DispatchBatchSize, runtime.GOMAXPROCS(0))
	fmt.Fprintf(&b, "%-10s %10s %12s %14s %10s\n",
		"goroutines", "packets", "ns/packet", "packets/sec", "accepts")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10d %10d %12.1f %14.0f %10d\n",
			r.Goroutines, r.Packets, r.NsPerPacket(), r.PPS(), r.Accepted)
	}
	if s := ParallelSpeedup(rows); s > 0 {
		fmt.Fprintf(&b, "widest rung vs single goroutine: %.2fx (ceiling is min(goroutines, cores))\n", s)
	}
	return b.String()
}
