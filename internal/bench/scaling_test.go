package bench

import (
	"strings"
	"testing"
)

// TestDispatchScaling runs the ladder over a short trace and checks
// shape and internal consistency; the verdict census is cross-checked
// inside DispatchScaling itself, so an error return is the real gate.
func TestDispatchScaling(t *testing.T) {
	rows, err := DispatchScaling(400)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(ScalingGoroutines) {
		t.Fatalf("%d rungs, want %d", len(rows), len(ScalingGoroutines))
	}
	for i, r := range rows {
		if r.Goroutines != ScalingGoroutines[i] {
			t.Errorf("rung %d: goroutines = %d, want %d", i, r.Goroutines, ScalingGoroutines[i])
		}
		if r.Packets != 400 || r.Wall <= 0 || r.PPS() <= 0 || r.NsPerPacket() <= 0 {
			t.Errorf("implausible rung: %+v", r)
		}
		if r.Accepted != rows[0].Accepted {
			t.Errorf("accepts diverge across rungs: %+v vs %+v", r, rows[0])
		}
	}
	if s := ParallelSpeedup(rows); s <= 0 {
		t.Errorf("ParallelSpeedup = %v, want > 0", s)
	}
	out := FormatScaling(rows)
	for _, want := range []string{"goroutines", "GOMAXPROCS", "packets/sec"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatScaling output missing %q:\n%s", want, out)
		}
	}
}

// TestParallelSpeedupEdges pins the degenerate inputs.
func TestParallelSpeedupEdges(t *testing.T) {
	if s := ParallelSpeedup(nil); s != 0 {
		t.Errorf("ParallelSpeedup(nil) = %v, want 0", s)
	}
	rows := []ScalingRow{
		{Goroutines: 1, Packets: 100, Wall: 200},
		{Goroutines: 8, Packets: 100, Wall: 50},
	}
	if s := ParallelSpeedup(rows); s < 3.99 || s > 4.01 {
		t.Errorf("ParallelSpeedup = %v, want 4.0", s)
	}
}
