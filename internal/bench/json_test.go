package bench

import (
	"bytes"
	"encoding/json"
	"runtime"
	"testing"
	"time"
)

// TestBuildReport runs the whole -json path over a short trace and
// checks the document round-trips with plausible contents: every
// filter present, nanosecond stage splits that sum near the total,
// and cycle figures consistent with the microsecond axis.
func TestBuildReport(t *testing.T) {
	now := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	rep, err := BuildReport(40, now)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != ReportSchema || rep.Packets != 40 || rep.Timestamp != "2026-08-06T12:00:00Z" {
		t.Fatalf("bad header: %+v", rep)
	}
	if len(rep.Table1) != 4 || len(rep.Stages) != 4 || len(rep.Fig8) != 4 || rep.Checksum == nil {
		t.Fatalf("incomplete report: %d/%d/%d table1/stages/fig8 rows", len(rep.Table1), len(rep.Stages), len(rep.Fig8))
	}
	for _, r := range rep.Table1 {
		if r.ValidationNs <= 0 || r.BinaryBytes <= 0 || r.Instructions <= 0 {
			t.Errorf("implausible table1 row: %+v", r)
		}
	}
	for _, r := range rep.Stages {
		stages := r.ParseNs + r.SigNs + r.VCGenNs + r.CheckNs + r.WCETNs
		if stages <= 0 || r.TotalNs < stages/2 {
			t.Errorf("implausible stage split: %+v", r)
		}
	}
	for _, r := range rep.Fig8 {
		pccUs, ok := r.MicrosPerPkt["PCC"]
		if !ok || pccUs <= 0 {
			t.Errorf("fig8 row missing PCC micros: %+v", r)
		}
		if got := r.CyclesPerPkt["PCC"]; got != pccUs*cyclesPerMicro {
			t.Errorf("cycles/micros inconsistent: %v vs %v", got, pccUs)
		}
	}
	if rep.Checksum.SpeedupVsC <= 1 {
		t.Errorf("checksum speedup %.2f, want > 1", rep.Checksum.SpeedupVsC)
	}
	if len(rep.Dispatch) != 4 {
		t.Fatalf("dispatch matrix has %d rows, want 4", len(rep.Dispatch))
	}
	for _, r := range rep.Dispatch {
		if r.Packets != 40 || r.Filters != 4 || r.WallNs <= 0 || r.PPS <= 0 {
			t.Errorf("implausible dispatch row: %+v", r)
		}
		if (r.Backend != "interp" && r.Backend != "compiled") ||
			(r.Shape != "single" && r.Shape != "batch1024") {
			t.Errorf("unexpected dispatch configuration: %+v", r)
		}
	}
	// Accept counts are cross-checked inside Dispatch; here just pin
	// that all four configurations agree with each other.
	for _, r := range rep.Dispatch[1:] {
		if r.Accepted != rep.Dispatch[0].Accepted {
			t.Errorf("dispatch accepts diverge: %+v vs %+v", r, rep.Dispatch[0])
		}
	}

	// Schema 3 (grown by schema 5): the observability matrix with the
	// fully observed postures last, verdicts agreeing across every
	// instrumentation.
	if len(rep.Observability) != 6 {
		t.Fatalf("observability matrix has %d rows, want 6", len(rep.Observability))
	}
	for _, r := range rep.Observability {
		if r.Packets != 40 || r.Filters != 4 || r.WallNs <= 0 || r.PPS <= 0 {
			t.Errorf("implausible observability row: %+v", r)
		}
		if r.Accepted != rep.Observability[0].Accepted {
			t.Errorf("observability accepts diverge: %+v vs %+v", r, rep.Observability[0])
		}
	}
	obs := rep.Observability[4]
	if obs.Config != "compiled+prof+obs" || !obs.Observers || !obs.Profiling || obs.Windowed {
		t.Errorf("fully observed posture missing or mislabeled: %+v", obs)
	}
	win := rep.Observability[5]
	if win.Config != "compiled+prof+obs+win" || !win.Observers || !win.Windowed {
		t.Errorf("windowed posture missing or mislabeled: %+v", win)
	}

	// Schema 5: the certificate-cost baseline.
	if len(rep.CertCost) != 4 {
		t.Fatalf("cert_cost has %d rows, want 4", len(rep.CertCost))
	}
	for i, c := range rep.CertCost {
		if c.ProofBytes <= 0 || c.ProofNodes <= 0 || c.VCNodes <= 0 || c.CheckSteps <= 0 || c.CodeBytes <= 0 {
			t.Errorf("implausible cert_cost row: %+v", c)
		}
		if c.Filter != rep.Table1[i].Filter {
			t.Errorf("cert_cost filter order diverges from table1: %q vs %q", c.Filter, rep.Table1[i].Filter)
		}
		if c.ProofBytes != rep.Table1[i].ProofBytes {
			t.Errorf("cert_cost proof bytes disagree with table1: %d vs %d", c.ProofBytes, rep.Table1[i].ProofBytes)
		}
	}

	// Schema 4: the multi-goroutine scaling ladder over one shared
	// lock-free kernel, with the core budget recorded beside it.
	if len(rep.DispatchScaling) != len(ScalingGoroutines) {
		t.Fatalf("dispatch_scaling has %d rungs, want %d", len(rep.DispatchScaling), len(ScalingGoroutines))
	}
	for i, r := range rep.DispatchScaling {
		if r.Goroutines != ScalingGoroutines[i] || r.Packets != 40 || r.Filters != 4 || r.WallNs <= 0 || r.PPS <= 0 {
			t.Errorf("implausible scaling rung: %+v", r)
		}
		if r.Accepted != rep.DispatchScaling[0].Accepted {
			t.Errorf("scaling accepts diverge: %+v vs %+v", r, rep.DispatchScaling[0])
		}
	}
	if rep.ParallelSpeedup <= 0 {
		t.Errorf("parallel_speedup = %v, want > 0", rep.ParallelSpeedup)
	}
	if rep.GOMAXPROCS != runtime.GOMAXPROCS(0) {
		t.Errorf("gomaxprocs = %d, want %d", rep.GOMAXPROCS, runtime.GOMAXPROCS(0))
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if back.Fig8[0].Filter != rep.Fig8[0].Filter {
		t.Fatal("round-trip lost rows")
	}

	if got, want := ReportFilename(now), "BENCH_20260806T120000Z.json"; got != want {
		t.Fatalf("ReportFilename = %q, want %q", got, want)
	}
}
