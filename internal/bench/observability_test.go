package bench

import (
	"strings"
	"testing"
	"time"
)

// TestProfilingOverheadPct pins the headline arithmetic on synthetic
// rows: overhead is the profiled-compiled throughput shortfall as a
// percentage of the unprofiled compiled rate, ignoring the observed
// posture and the interpreter rows.
func TestProfilingOverheadPct(t *testing.T) {
	rows := []ObservabilityRow{
		{Backend: "interp", Profiling: false, Packets: 1000, Wall: 10 * time.Millisecond},
		{Backend: "interp", Profiling: true, Packets: 1000, Wall: 20 * time.Millisecond},
		{Backend: "compiled", Profiling: false, Packets: 1000, Wall: 1 * time.Millisecond},
		{Backend: "compiled", Profiling: true, Packets: 1000, Wall: 1100 * time.Microsecond},
		{Backend: "compiled", Profiling: true, Observers: true, Packets: 1000, Wall: 5 * time.Millisecond},
		{Backend: "compiled", Profiling: true, Observers: true, Windowed: true, Packets: 1000, Wall: 5500 * time.Microsecond},
	}
	got := ProfilingOverheadPct(rows)
	// plain = 1e6 pps, prof = 1e6/1.1 pps → (1 - 1/1.1)*100 ≈ 9.09%.
	if got < 9.0 || got > 9.2 {
		t.Fatalf("ProfilingOverheadPct = %.3f, want ≈ 9.09", got)
	}
	// Missing either compiled row: no number rather than a wrong one.
	if pct := ProfilingOverheadPct(rows[:3]); pct != 0 {
		t.Fatalf("overhead without a profiled row = %.3f, want 0", pct)
	}

	// Windowed overhead compares the two observed postures: 5 ms plain
	// vs 5.5 ms windowed → (1 - 1/1.1)*100 ≈ 9.09% again.
	winGot := WindowOverheadPct(rows)
	if winGot < 9.0 || winGot > 9.2 {
		t.Fatalf("WindowOverheadPct = %.3f, want ≈ 9.09", winGot)
	}
	if pct := WindowOverheadPct(rows[:5]); pct != 0 {
		t.Fatalf("window overhead without a windowed row = %.3f, want 0", pct)
	}

	text := FormatObservability(rows)
	for _, want := range []string{"interp+plain", "interp+prof", "compiled+plain",
		"compiled+prof", "compiled+prof+obs", "compiled+prof+obs+win",
		"profiling overhead", "windowed recording overhead"} {
		if !strings.Contains(text, want) {
			t.Errorf("FormatObservability missing %q:\n%s", want, text)
		}
	}
}

// TestObservabilityMeasures runs the real matrix over a tiny trace:
// all six configurations must dispatch, agree with the reference
// verdicts (checked inside Observability), and report positive walls.
func TestObservabilityMeasures(t *testing.T) {
	rows, err := Observability(64)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows, want 6", len(rows))
	}
	if last := rows[len(rows)-1]; !last.Windowed || !last.Observers {
		t.Fatalf("last row must be the windowed posture: %+v", last)
	}
	for _, r := range rows {
		if r.Wall <= 0 || r.Packets != 64 || r.PPS() <= 0 {
			t.Errorf("implausible row: %+v", r)
		}
		if r.Accepted != rows[0].Accepted {
			t.Errorf("verdicts diverge across instrumentation: %+v vs %+v", r, rows[0])
		}
	}
}
