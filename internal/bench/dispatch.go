// Dispatch throughput: the backend × dispatch-shape matrix. The paper
// argues PCC's run-time cost is the filter's own instructions; this
// benchmark measures how much of the *consumer's* dispatch cost is
// simulation overhead (the interpreter's decode loop) versus fixed
// per-packet kernel overhead (lock, pool, telemetry), by crossing the
// two backends (interpreted reference vs install-time threaded-code
// compilation) with the two dispatch shapes (per-packet DeliverPacket
// vs vectorized DeliverPackets). Every configuration's verdicts are
// cross-checked against the pure-Go reference semantics, so a
// throughput number from a diverging backend can never be reported.
package bench

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	pcc "repro"
	"repro/internal/filters"
	"repro/internal/kernel"
)

// DispatchBatchSize is the vector length DeliverPackets is driven
// with: large enough to amortize the per-batch fixed costs, small
// enough to model a NIC ring segment rather than an unbounded queue.
const DispatchBatchSize = 1024

// DispatchRow is one configuration's measured throughput.
type DispatchRow struct {
	Backend string // "interp" | "compiled"
	Batch   bool   // false: DeliverPacket per packet; true: DeliverPackets
	Packets int
	Filters int
	Wall    time.Duration
	// Accepted is the total number of (packet, filter) accepts —
	// identical across configurations by construction (cross-checked).
	Accepted int
}

// NsPerPacket is the measured host cost of dispatching one packet
// through all installed filters.
func (r DispatchRow) NsPerPacket() float64 {
	if r.Packets == 0 {
		return 0
	}
	return float64(r.Wall.Nanoseconds()) / float64(r.Packets)
}

// PPS is the measured host packets-per-second throughput.
func (r DispatchRow) PPS() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Packets) / r.Wall.Seconds()
}

// dispatchConfigs is the measurement matrix in display order: the
// seed's baseline first (interpreted, per-packet), the full
// optimization last (compiled, vectorized).
var dispatchConfigs = []struct {
	backend kernel.Backend
	batch   bool
}{
	{kernel.BackendInterp, false},
	{kernel.BackendInterp, true},
	{kernel.BackendCompiled, false},
	{kernel.BackendCompiled, true},
}

// DispatchTrials is how many interleaved timing rounds Dispatch runs
// per configuration, keeping each configuration's best. A single
// round is at the mercy of host frequency scaling and scheduling
// noise (observed swings of ±40% on shared machines); interleaving
// the rounds gives every configuration the same shot at the host's
// fast state, and the minimum approximates uncontended throughput.
const DispatchTrials = 3

// Dispatch measures the backend × dispatch-shape matrix over an
// n-packet trace with the four paper filters installed through the
// full certify→validate path. Each configuration is timed
// DispatchTrials times, rounds interleaved across configurations,
// and the best trial is reported. Rows come back in dispatchConfigs
// order.
func Dispatch(n int) ([]DispatchRow, error) {
	return DispatchBackends(n, "")
}

// DispatchBackends is Dispatch restricted to one backend ("interp" or
// "compiled"; "" measures both) — the paperbench -backend flag, for
// timing one half of the matrix without paying for the other.
func DispatchBackends(n int, backend string) ([]DispatchRow, error) {
	configs := dispatchConfigs
	if backend != "" {
		b, err := kernel.ParseBackend(backend)
		if err != nil {
			return nil, err
		}
		configs = nil
		for _, cfg := range dispatchConfigs {
			if cfg.backend == b {
				configs = append(configs, cfg)
			}
		}
	}
	pkts := Trace(n)
	raw := make([][]byte, len(pkts))
	for i, p := range pkts {
		raw[i] = p.Data
	}

	// Reference verdict census, computed once: total accepts over the
	// trace. Each measured configuration must reproduce it exactly.
	wantAccepts := 0
	for _, p := range pkts {
		for _, f := range filters.All {
			if filters.Reference(f, p.Data) {
				wantAccepts++
			}
		}
	}

	// One kernel per configuration, installed once through the full
	// certify→validate path; the timing rounds reuse them.
	kernels := make([]*kernel.Kernel, len(configs))
	for ci, cfg := range configs {
		k := kernel.New()
		if err := k.SetBackend(cfg.backend); err != nil {
			return nil, err
		}
		for _, f := range filters.All {
			cert, err := pcc.Certify(filters.Source(f), k.FilterPolicy(), nil)
			if err != nil {
				return nil, fmt.Errorf("%v: %w", f, err)
			}
			if err := k.InstallFilter(fmt.Sprintf("proc-%d", f), cert.Binary); err != nil {
				return nil, fmt.Errorf("%v: %w", f, err)
			}
		}
		kernels[ci] = k
	}

	rows := make([]DispatchRow, len(configs))
	for trial := 0; trial < DispatchTrials; trial++ {
		for ci, cfg := range configs {
			// Certification and earlier rounds allocate; collect
			// before timing so no configuration pays another's GC
			// debt mid-measurement.
			runtime.GC()

			k := kernels[ci]
			accepted := 0
			start := time.Now()
			if cfg.batch {
				for lo := 0; lo < len(raw); lo += DispatchBatchSize {
					hi := lo + DispatchBatchSize
					if hi > len(raw) {
						hi = len(raw)
					}
					out, err := k.DeliverPackets(raw[lo:hi])
					if err != nil {
						return nil, err
					}
					for _, acc := range out {
						accepted += len(acc)
					}
				}
			} else {
				for _, p := range pkts {
					acc, err := k.DeliverPacket(p)
					if err != nil {
						return nil, err
					}
					accepted += len(acc)
				}
			}
			wall := time.Since(start)

			if accepted != wantAccepts {
				return nil, fmt.Errorf("dispatch %s/batch=%v: %d accepts, reference says %d",
					cfg.backend, cfg.batch, accepted, wantAccepts)
			}
			if trial == 0 || wall < rows[ci].Wall {
				rows[ci] = DispatchRow{
					Backend:  cfg.backend.String(),
					Batch:    cfg.batch,
					Packets:  len(pkts),
					Filters:  len(filters.All),
					Wall:     wall,
					Accepted: accepted,
				}
			}
		}
	}
	return rows, nil
}

// DispatchSpeedup returns the headline ratio: vectorized-compiled
// packets/sec over per-packet-interpreted packets/sec (the seed
// baseline). Zero when either row is missing.
func DispatchSpeedup(rows []DispatchRow) float64 {
	var base, best float64
	for _, r := range rows {
		switch {
		case r.Backend == "interp" && !r.Batch:
			base = r.PPS()
		case r.Backend == "compiled" && r.Batch:
			best = r.PPS()
		}
	}
	if base <= 0 {
		return 0
	}
	return best / base
}

// FormatDispatch renders the matrix with the headline speedup.
func FormatDispatch(rows []DispatchRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Dispatch throughput: backend × shape (host wall-clock, %d filters)\n",
		len(filters.All))
	fmt.Fprintf(&b, "%-10s %-8s %10s %12s %14s %10s\n",
		"backend", "shape", "packets", "ns/packet", "packets/sec", "accepts")
	for _, r := range rows {
		shape := "single"
		if r.Batch {
			shape = fmt.Sprintf("batch%d", DispatchBatchSize)
		}
		fmt.Fprintf(&b, "%-10s %-8s %10d %12.1f %14.0f %10d\n",
			r.Backend, shape, r.Packets, r.NsPerPacket(), r.PPS(), r.Accepted)
	}
	if s := DispatchSpeedup(rows); s > 0 {
		fmt.Fprintf(&b, "batch-compiled vs single-interpreted: %.2fx\n", s)
	}
	return b.String()
}
