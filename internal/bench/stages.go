package bench

import (
	"fmt"
	"strings"
	"time"

	pcc "repro"
	"repro/internal/filters"
	"repro/internal/machine"
	"repro/internal/policy"
)

// StageRow splits one filter's one-time validation cost (Table 1's
// "validation" column) into its pipeline stages: binary parsing, LF
// signature construction, VC generation, LF proof checking, and the
// static WCET analysis the kernel runs before committing a filter.
type StageRow struct {
	Filter   filters.Filter
	Parse    time.Duration
	SigCheck time.Duration
	VCGen    time.Duration
	Check    time.Duration
	WCET     time.Duration
	Total    time.Duration // whole pcc.Validate call plus WCET
}

// Stages certifies the four PCC filters and reports the per-stage
// validation-cost breakdown. Like Table1, each filter is validated a
// few times and the fastest run kept, since these are one-time costs
// measured on a multiprogrammed host.
func Stages() ([]StageRow, error) {
	pol := policy.PacketFilter()
	rows := make([]StageRow, 0, len(filters.All))
	for _, f := range filters.All {
		cert, err := pcc.Certify(filters.Source(f), pol, nil)
		if err != nil {
			return nil, fmt.Errorf("%v: %w", f, err)
		}
		var best *pcc.ValidationStats
		var ext *pcc.Extension
		for i := 0; i < 5; i++ {
			e, stats, err := pcc.Validate(cert.Binary, pol)
			if err != nil {
				return nil, fmt.Errorf("%v: %w", f, err)
			}
			if best == nil || stats.Time < best.Time {
				best, ext = stats, e
			}
		}
		var wcet time.Duration
		for i := 0; i < 5; i++ {
			start := time.Now()
			if _, err := machine.DEC21064.MaxCost(ext.Prog); err != nil {
				return nil, fmt.Errorf("%v: wcet: %w", f, err)
			}
			if d := time.Since(start); i == 0 || d < wcet {
				wcet = d
			}
		}
		rows = append(rows, StageRow{
			Filter:   f,
			Parse:    best.Parse,
			SigCheck: best.SigCheck,
			VCGen:    best.VCGen,
			Check:    best.Check,
			WCET:     wcet,
			Total:    best.Time + wcet,
		})
	}
	return rows, nil
}

// FormatStages renders the per-stage validation-cost table with each
// stage's share of the total, showing where the paper's one-time cost
// goes (LF proof checking dominates).
func FormatStages(rows []StageRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Validation cost by pipeline stage (µs, host; Table 1 split)\n")
	fmt.Fprintf(&b, "%-10s %9s %9s %9s %9s %9s %9s\n",
		"", "parse", "lfsig", "vcgen", "lfcheck", "wcet", "total")
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %9.0f %9.0f %9.0f %9.0f %9.0f %9.0f\n",
			r.Filter, us(r.Parse), us(r.SigCheck), us(r.VCGen), us(r.Check),
			us(r.WCET), us(r.Total))
	}
	fmt.Fprintf(&b, "shares of total:\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %8.1f%% %8.1f%% %8.1f%% %8.1f%% %8.1f%%\n",
			r.Filter,
			100*us(r.Parse)/us(r.Total), 100*us(r.SigCheck)/us(r.Total),
			100*us(r.VCGen)/us(r.Total), 100*us(r.Check)/us(r.Total),
			100*us(r.WCET)/us(r.Total))
	}
	return b.String()
}
