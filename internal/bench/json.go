// Machine-readable benchmark output: `paperbench -json` serializes
// the paper's tables into one BENCH_<timestamp>.json document so the
// perf trajectory is trackable across commits — every duration in
// integer nanoseconds, every modeled quantity in DEC 21064 cycles,
// and the validation cost split by pipeline stage.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"
)

// ReportSchema versions the JSON layout; bump on incompatible change.
// 2: added the dispatch section (backend × shape throughput matrix).
// 3: added the observability section (instrumentation overhead matrix
// and the headline profiling_overhead_pct).
// 4: added the dispatch_scaling section (multi-goroutine throughput
// ladder over one shared lock-free kernel), its headline
// parallel_speedup, and gomaxprocs — the core count the speedup was
// measured under, without which the ratio is uninterpretable.
// 5: added the cert_cost section (per-filter certificate size: proof
// bytes/nodes, VC nodes, check steps — the proof-size baseline), the
// windowed observability configuration (compiled+prof+obs+win, a
// `windowed` flag on observability rows), and its headline
// window_overhead_pct.
// 6: added the recovery section (verified journal replay, cold vs
// warm proof cache: records/sec and per-record p99) and its headline
// warm_recovery_speedup.
const ReportSchema = 6

// Table1JSON is one Table 1 row with durations in nanoseconds.
type Table1JSON struct {
	Filter       string  `json:"filter"`
	Instructions int     `json:"instructions"`
	BinaryBytes  int     `json:"binary_bytes"`
	ProofBytes   int     `json:"proof_bytes"`
	CodeBytes    int     `json:"code_bytes"`
	ValidationNs int64   `json:"validation_ns"`
	HeapKB       float64 `json:"heap_kb"`
}

// StageJSON is one validation-cost row split by pipeline stage.
type StageJSON struct {
	Filter  string `json:"filter"`
	ParseNs int64  `json:"parse_ns"`
	SigNs   int64  `json:"lfsig_ns"`
	VCGenNs int64  `json:"vcgen_ns"`
	CheckNs int64  `json:"lfcheck_ns"`
	WCETNs  int64  `json:"wcet_ns"`
	TotalNs int64  `json:"total_ns"`
}

// Fig8JSON is one Figure 8 row: modeled per-packet cost per approach,
// both in microseconds (the paper's axis) and DEC 21064 cycles.
type Fig8JSON struct {
	Filter         string             `json:"filter"`
	MicrosPerPkt   map[string]float64 `json:"micros_per_packet"`
	CyclesPerPkt   map[string]float64 `json:"cycles_per_packet"`
	AcceptedOfPkts string             `json:"accepted"`
}

// ChecksumJSON is the §4 loop experiment.
type ChecksumJSON struct {
	Instructions int     `json:"instructions"`
	LoopInstrs   int     `json:"loop_instructions"`
	BinaryBytes  int     `json:"binary_bytes"`
	ValidationNs int64   `json:"validation_ns"`
	SpeedupVsC   float64 `json:"speedup_vs_c"`
}

// DispatchJSON is one row of the dispatch-throughput matrix: host
// wall-clock cost of kernel dispatch under one backend × shape
// configuration (see dispatch.go).
type DispatchJSON struct {
	Backend     string  `json:"backend"` // interp | compiled
	Shape       string  `json:"shape"`   // single | batch<N>
	Packets     int     `json:"packets"`
	Filters     int     `json:"filters"`
	WallNs      int64   `json:"wall_ns"`
	NsPerPacket float64 `json:"ns_per_packet"`
	PPS         float64 `json:"packets_per_sec"`
	Accepted    int     `json:"accepted"`
}

// CertCostJSON is one filter's certificate-cost row: the size of the
// safety evidence itself (see certcost.go).
type CertCostJSON struct {
	Filter       string  `json:"filter"`
	CodeBytes    int     `json:"code_bytes"`
	ProofBytes   int     `json:"proof_bytes"`
	ProofNodes   int     `json:"proof_nodes"`
	VCNodes      int     `json:"vc_nodes"`
	CheckSteps   int     `json:"check_steps"`
	ProofPerCode float64 `json:"proof_per_code"`
}

// ObservabilityJSON is one row of the instrumentation-overhead
// matrix: vectorized-dispatch throughput with profiling and the
// telemetry observers toggled (see observability.go).
type ObservabilityJSON struct {
	Config      string  `json:"config"`  // e.g. compiled+prof
	Backend     string  `json:"backend"` // interp | compiled
	Profiling   bool    `json:"profiling"`
	Observers   bool    `json:"observers"` // recorder + flight recorder
	Windowed    bool    `json:"windowed"`  // sliding-window recorder layer
	Packets     int     `json:"packets"`
	Filters     int     `json:"filters"`
	WallNs      int64   `json:"wall_ns"`
	NsPerPacket float64 `json:"ns_per_packet"`
	PPS         float64 `json:"packets_per_sec"`
	Accepted    int     `json:"accepted"`
}

// RecoveryJSON is one verified-recovery configuration: journal replay
// rate with the proof cache disabled (cold) or enabled (warm), plus
// the per-record restore-latency tail (see recovery.go).
type RecoveryJSON struct {
	Config        string  `json:"config"` // cold | warm
	Records       int     `json:"records"`
	Distinct      int     `json:"distinct_binaries"`
	Restored      int     `json:"restored"`
	WallNs        int64   `json:"wall_ns"`
	RecordsPerSec float64 `json:"records_per_sec"`
	P99Ns         int64   `json:"p99_ns"`
}

// ScalingJSON is one rung of the multi-goroutine dispatch-scaling
// ladder: aggregate throughput of G goroutines sharing one kernel's
// lock-free filter table (see scaling.go).
type ScalingJSON struct {
	Goroutines  int     `json:"goroutines"`
	Packets     int     `json:"packets"`
	Filters     int     `json:"filters"`
	WallNs      int64   `json:"wall_ns"`
	NsPerPacket float64 `json:"ns_per_packet"`
	PPS         float64 `json:"packets_per_sec"`
	Accepted    int     `json:"accepted"`
}

// Report is the whole document.
type Report struct {
	Schema    int            `json:"schema"`
	Timestamp string         `json:"timestamp"` // RFC 3339, UTC
	GoVersion string         `json:"go_version"`
	Packets   int            `json:"packets"`
	Table1    []Table1JSON   `json:"table1"`
	Stages    []StageJSON    `json:"stages"`
	Fig8      []Fig8JSON     `json:"fig8"`
	Checksum  *ChecksumJSON  `json:"checksum,omitempty"`
	Dispatch  []DispatchJSON `json:"dispatch"`
	// DispatchSpeedup is the headline batch-compiled over
	// single-interpreted packets/sec ratio.
	DispatchSpeedup float64 `json:"dispatch_speedup"`
	// CertCost is the per-filter certificate-size table — the
	// proof-size baseline future certificate compression regresses
	// against.
	CertCost []CertCostJSON `json:"cert_cost"`
	// Observability is the instrumentation-overhead matrix;
	// ProfilingOverheadPct is its headline: the percentage of
	// unprofiled compiled throughput lost to per-block profiling;
	// WindowOverheadPct the analogous cost of the sliding-window
	// recorder layer relative to the plain-recorder observed posture.
	Observability        []ObservabilityJSON `json:"observability"`
	ProfilingOverheadPct float64             `json:"profiling_overhead_pct"`
	WindowOverheadPct    float64             `json:"window_overhead_pct"`
	// DispatchScaling is the multi-goroutine throughput ladder;
	// ParallelSpeedup is its headline (widest rung over one
	// goroutine) and GOMAXPROCS the core budget it ran under — the
	// achievable ceiling is min(goroutines, GOMAXPROCS).
	DispatchScaling []ScalingJSON `json:"dispatch_scaling"`
	ParallelSpeedup float64       `json:"parallel_speedup"`
	GOMAXPROCS      int           `json:"gomaxprocs"`
	// Recovery is the verified-recovery matrix (cold vs warm journal
	// replay); WarmRecoverySpeedup is its headline: warm records/sec
	// over cold — the proof cache's contribution to reboot time.
	Recovery            []RecoveryJSON `json:"recovery"`
	WarmRecoverySpeedup float64        `json:"warm_recovery_speedup"`
}

// cyclesPerMicro converts the paper's microsecond axis back to cycles
// on the modeled 175-MHz Alpha.
const cyclesPerMicro = 175.0

// BuildReport runs Table 1, the stage split, Figure 8 over an
// n-packet trace, and the checksum experiment, and assembles the
// document. now is injected so runs are reproducible in tests.
func BuildReport(n int, now time.Time) (*Report, error) {
	rep := &Report{
		Schema:    ReportSchema,
		Timestamp: now.UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Packets:   n,
	}

	t1, err := Table1()
	if err != nil {
		return nil, fmt.Errorf("table1: %w", err)
	}
	for _, r := range t1 {
		rep.Table1 = append(rep.Table1, Table1JSON{
			Filter:       r.Filter.String(),
			Instructions: r.Instructions,
			BinaryBytes:  r.BinarySize,
			ProofBytes:   r.ProofBytes,
			CodeBytes:    r.CodeBytes,
			ValidationNs: r.Validation.Nanoseconds(),
			HeapKB:       r.HeapKB,
		})
	}

	st, err := Stages()
	if err != nil {
		return nil, fmt.Errorf("stages: %w", err)
	}
	for _, r := range st {
		rep.Stages = append(rep.Stages, StageJSON{
			Filter:  r.Filter.String(),
			ParseNs: r.Parse.Nanoseconds(),
			SigNs:   r.SigCheck.Nanoseconds(),
			VCGenNs: r.VCGen.Nanoseconds(),
			CheckNs: r.Check.Nanoseconds(),
			WCETNs:  r.WCET.Nanoseconds(),
			TotalNs: r.Total.Nanoseconds(),
		})
	}

	f8, err := Fig8(n)
	if err != nil {
		return nil, fmt.Errorf("fig8: %w", err)
	}
	for _, r := range f8 {
		row := Fig8JSON{
			Filter:         r.Filter.String(),
			MicrosPerPkt:   map[string]float64{},
			CyclesPerPkt:   map[string]float64{},
			AcceptedOfPkts: fmt.Sprintf("%d/%d", r.Accepted, n),
		}
		for _, a := range Approaches {
			row.MicrosPerPkt[a.String()] = r.Micros[a]
			row.CyclesPerPkt[a.String()] = r.Micros[a] * cyclesPerMicro
		}
		rep.Fig8 = append(rep.Fig8, row)
	}

	cn := n
	if cn > 2000 {
		cn = 2000
	}
	cs, err := Checksum(cn)
	if err != nil {
		return nil, fmt.Errorf("checksum: %w", err)
	}
	rep.Checksum = &ChecksumJSON{
		Instructions: cs.Instructions,
		LoopInstrs:   cs.LoopInstrs,
		BinaryBytes:  cs.BinarySize,
		ValidationNs: cs.Validation.Nanoseconds(),
		SpeedupVsC:   cs.SpeedupVsC,
	}

	dn := n
	if dn > 50000 {
		dn = 50000 // host-wall-clock measurement; 50k packets is stable
	}
	disp, err := Dispatch(dn)
	if err != nil {
		return nil, fmt.Errorf("dispatch: %w", err)
	}
	for _, r := range disp {
		shape := "single"
		if r.Batch {
			shape = fmt.Sprintf("batch%d", DispatchBatchSize)
		}
		rep.Dispatch = append(rep.Dispatch, DispatchJSON{
			Backend:     r.Backend,
			Shape:       shape,
			Packets:     r.Packets,
			Filters:     r.Filters,
			WallNs:      r.Wall.Nanoseconds(),
			NsPerPacket: r.NsPerPacket(),
			PPS:         r.PPS(),
			Accepted:    r.Accepted,
		})
	}
	rep.DispatchSpeedup = DispatchSpeedup(disp)

	cc, err := CertCost()
	if err != nil {
		return nil, fmt.Errorf("cert cost: %w", err)
	}
	for _, r := range cc {
		rep.CertCost = append(rep.CertCost, CertCostJSON{
			Filter:       r.Filter.String(),
			CodeBytes:    r.CodeBytes,
			ProofBytes:   r.ProofBytes,
			ProofNodes:   r.ProofNodes,
			VCNodes:      r.VCNodes,
			CheckSteps:   r.CheckSteps,
			ProofPerCode: r.ProofPerCode(),
		})
	}

	obs, err := Observability(dn)
	if err != nil {
		return nil, fmt.Errorf("observability: %w", err)
	}
	for _, r := range obs {
		rep.Observability = append(rep.Observability, ObservabilityJSON{
			Config:      r.Config(),
			Backend:     r.Backend,
			Profiling:   r.Profiling,
			Observers:   r.Observers,
			Windowed:    r.Windowed,
			Packets:     r.Packets,
			Filters:     r.Filters,
			WallNs:      r.Wall.Nanoseconds(),
			NsPerPacket: r.NsPerPacket(),
			PPS:         r.PPS(),
			Accepted:    r.Accepted,
		})
	}
	rep.ProfilingOverheadPct = ProfilingOverheadPct(obs)
	rep.WindowOverheadPct = WindowOverheadPct(obs)

	sc, err := DispatchScaling(dn)
	if err != nil {
		return nil, fmt.Errorf("dispatch scaling: %w", err)
	}
	for _, r := range sc {
		rep.DispatchScaling = append(rep.DispatchScaling, ScalingJSON{
			Goroutines:  r.Goroutines,
			Packets:     r.Packets,
			Filters:     r.Filters,
			WallNs:      r.Wall.Nanoseconds(),
			NsPerPacket: r.NsPerPacket(),
			PPS:         r.PPS(),
			Accepted:    r.Accepted,
		})
	}
	rep.ParallelSpeedup = ParallelSpeedup(sc)
	rep.GOMAXPROCS = runtime.GOMAXPROCS(0)

	rc, err := Recovery(RecoveryRecords)
	if err != nil {
		return nil, fmt.Errorf("recovery: %w", err)
	}
	for _, r := range rc {
		rep.Recovery = append(rep.Recovery, RecoveryJSON{
			Config:        r.Config,
			Records:       r.Records,
			Distinct:      r.Distinct,
			Restored:      r.Restored,
			WallNs:        r.Wall.Nanoseconds(),
			RecordsPerSec: r.RecordsPerSec(),
			P99Ns:         r.P99.Nanoseconds(),
		})
	}
	rep.WarmRecoverySpeedup = WarmRecoverySpeedup(rc)
	return rep, nil
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReportFilename names the output document: BENCH_<UTC timestamp>.json,
// sortable and collision-free at second granularity.
func ReportFilename(now time.Time) string {
	return "BENCH_" + now.UTC().Format("20060102T150405Z") + ".json"
}
