// Package bench regenerates every table and figure of the paper's
// evaluation (§3.1 and §4): Table 1 (proof size and validation cost),
// Figure 7 (PCC binary layout), Figure 8 (average per-packet run
// time), Figure 9 (startup-cost amortization), and the checksum
// experiment. It is shared by cmd/paperbench and the root package's
// testing.B benchmarks.
//
// Per-packet run times are simulated DEC 3000/600 cycles converted at
// 175 MHz (see internal/machine and DESIGN.md); one-time costs
// (validation, compilation, rewriting) are measured host wall-clock,
// the same mixture the paper reports.
package bench

import (
	"fmt"
	"time"

	pcc "repro"
	"repro/internal/alpha"
	"repro/internal/bpf"
	"repro/internal/filters"
	"repro/internal/logic"
	"repro/internal/m3"
	"repro/internal/machine"
	"repro/internal/pktgen"
	"repro/internal/policy"
	"repro/internal/sfi"
)

// TraceSize is the default trace length (the paper used a
// 200,000-packet trace).
const TraceSize = 200000

// DefaultSeed makes every reported number reproducible.
const DefaultSeed = 1996

// Trace generates the standard synthetic trace.
func Trace(n int) []pktgen.Packet {
	return pktgen.Generate(n, pktgen.Config{Seed: DefaultSeed})
}

// Approach names one of the four compared systems, in the paper's
// Figure 8 order.
type Approach int

// The compared approaches.
const (
	BPF Approach = iota
	M3View
	SFI
	PCC
	numApproaches
)

func (a Approach) String() string {
	return [...]string{"BPF", "M3-VIEW", "SFI", "PCC"}[a]
}

// Approaches lists all approaches in display order.
var Approaches = []Approach{BPF, M3View, SFI, PCC}

// --- Figure 8 ----------------------------------------------------------

// Fig8Row holds the average per-packet run time of one filter under
// each approach, in microseconds on the modeled 175-MHz Alpha.
type Fig8Row struct {
	Filter filters.Filter
	Micros [numApproaches]float64
	// Accepted is the number of accepted packets (identical across
	// approaches; reported as a cross-check).
	Accepted int
}

// Fig8 reproduces Figure 8: average per-packet run time over an
// n-packet trace for the four filters under all four approaches.
func Fig8(n int) ([]Fig8Row, error) {
	pkts := Trace(n)
	rows := make([]Fig8Row, 0, len(filters.All))
	for _, f := range filters.All {
		row := Fig8Row{Filter: f}

		variants, err := buildVariants(f)
		if err != nil {
			return nil, err
		}
		var cycles [numApproaches]int64
		for _, p := range pkts {
			aBPF, c := bpf.RunCycles(variants.bpfProg, p.Data, &bpf.DefaultCost)
			cycles[BPF] += c

			got, c, err := variants.envPlain.Exec(variants.m3Prog, p.Data, machine.Unchecked)
			if err != nil {
				return nil, fmt.Errorf("%v/M3: %w", f, err)
			}
			cycles[M3View] += c
			if (got != 0) != (aBPF != 0) {
				return nil, fmt.Errorf("%v: M3 disagrees with BPF", f)
			}

			got, c, err = variants.envSFI.Exec(variants.sfiProg, p.Data, machine.Unchecked)
			if err != nil {
				return nil, fmt.Errorf("%v/SFI: %w", f, err)
			}
			cycles[SFI] += c
			if (got != 0) != (aBPF != 0) {
				return nil, fmt.Errorf("%v: SFI disagrees with BPF", f)
			}

			got, c, err = variants.envPlain.Exec(variants.pccProg, p.Data, machine.Unchecked)
			if err != nil {
				return nil, fmt.Errorf("%v/PCC: %w", f, err)
			}
			cycles[PCC] += c
			if (got != 0) != (aBPF != 0) {
				return nil, fmt.Errorf("%v: PCC disagrees with BPF", f)
			}
			if got != 0 {
				row.Accepted++
			}
		}
		for a := range cycles {
			row.Micros[a] = machine.Micros(cycles[a]) / float64(len(pkts))
		}
		rows = append(rows, row)
	}
	return rows, nil
}

type variantSet struct {
	pccProg  []alpha.Instr
	sfiProg  []alpha.Instr
	m3Prog   []alpha.Instr
	bpfProg  []bpf.Insn
	envPlain filters.Env
	envSFI   filters.Env
}

func buildVariants(f filters.Filter) (*variantSet, error) {
	v := &variantSet{
		pccProg:  filters.Prog(f),
		bpfProg:  filters.BPFProg(f),
		envPlain: filters.Env{},
		envSFI:   filters.Env{SFI: true},
	}
	var err error
	if v.sfiProg, err = sfi.Rewrite(v.pccProg); err != nil {
		return nil, err
	}
	if v.m3Prog, err = m3.Compile(m3.Prog(f, m3.View), m3.View); err != nil {
		return nil, err
	}
	if err := bpf.Validate(v.bpfProg); err != nil {
		return nil, err
	}
	return v, nil
}

// --- Table 1 ------------------------------------------------------------

// Table1Row reports, for one filter, the PCC binary metrics of Table 1.
type Table1Row struct {
	Filter       filters.Filter
	Instructions int
	BinarySize   int           // bytes, total PCC binary
	Validation   time.Duration // one-time proof validation (host)
	HeapKB       float64       // heap allocated during validation
	ProofBytes   int           // proof section size
	CodeBytes    int           // native code section size
}

// Table1 certifies and validates the four PCC filters, reporting the
// paper's Table 1 columns.
func Table1() ([]Table1Row, error) {
	pol := policy.PacketFilter()
	rows := make([]Table1Row, 0, len(filters.All))
	for _, f := range filters.All {
		cert, err := pcc.Certify(filters.Source(f), pol, nil)
		if err != nil {
			return nil, fmt.Errorf("%v: %w", f, err)
		}
		// Validate a few times and keep the fastest, as one does for
		// one-time costs on a multiprogrammed host.
		var best *pcc.ValidationStats
		for i := 0; i < 5; i++ {
			_, stats, err := pcc.Validate(cert.Binary, pol)
			if err != nil {
				return nil, fmt.Errorf("%v: %w", f, err)
			}
			if best == nil || stats.Time < best.Time {
				best = stats
			}
		}
		rows = append(rows, Table1Row{
			Filter:       f,
			Instructions: cert.Instructions,
			BinarySize:   len(cert.Binary),
			Validation:   best.Time,
			HeapKB:       float64(best.HeapBytes) / 1024,
			ProofBytes:   cert.Layout.ProofLen,
			CodeBytes:    cert.Layout.CodeLen,
		})
	}
	return rows, nil
}

// --- Figure 7 ------------------------------------------------------------

// ResourceAccessSrc is the Figure 5 program used for the Figure 7
// layout.
const ResourceAccessSrc = `
        ADDQ  r0, 8, r1
        LDQ   r0, 8(r0)
        LDQ   r2, -8(r1)
        ADDQ  r0, 1, r0
        BEQ   r2, L1
        STQ   r0, 0(r1)
L1:     RET
`

// Fig7 reproduces Figure 7: the PCC binary layout for the resource
// access example.
func Fig7() (*pcc.CertResult, error) {
	return pcc.Certify(ResourceAccessSrc, policy.ResourceAccess(), nil)
}

// --- Figure 9 ------------------------------------------------------------

// Fig9Point is one point of the amortization curve: cumulative cost in
// milliseconds after processing N packets.
type Fig9Point struct {
	Packets int
	MS      [numApproaches]float64
}

// Fig9Result reproduces Figure 9 for Filter 4: startup cost plus
// per-packet cost as a function of packets processed, and the
// crossover points after which PCC is cheaper than each alternative.
type Fig9Result struct {
	// Startup costs in milliseconds: PCC proof validation, BPF program
	// check, M3 compilation, SFI rewrite+validation (host wall-clock).
	StartupMS [numApproaches]float64
	// PerPacketUS are the Figure 8 per-packet microseconds.
	PerPacketUS [numApproaches]float64
	// Curve samples the cumulative cost.
	Curve []Fig9Point
	// CrossoverPackets[a] is the number of packets after which PCC's
	// total cost drops below approach a (0 for PCC itself).
	CrossoverPackets [numApproaches]int
}

// Fig9 computes the amortization analysis over a calibration trace of
// n packets and a curve up to maxPackets.
func Fig9(n, maxPackets int) (*Fig9Result, error) {
	rows, err := Fig8(n)
	if err != nil {
		return nil, err
	}
	var f4 *Fig8Row
	for i := range rows {
		if rows[i].Filter == filters.Filter4 {
			f4 = &rows[i]
		}
	}

	res := &Fig9Result{PerPacketUS: f4.Micros}

	// Startup costs.
	pol := policy.PacketFilter()
	cert, err := pcc.Certify(filters.Source(filters.Filter4), pol, nil)
	if err != nil {
		return nil, err
	}
	bestValidate := time.Duration(1 << 62)
	for i := 0; i < 5; i++ {
		start := time.Now()
		if _, _, err := pcc.Validate(cert.Binary, pol); err != nil {
			return nil, err
		}
		if d := time.Since(start); d < bestValidate {
			bestValidate = d
		}
	}
	res.StartupMS[PCC] = bestValidate.Seconds() * 1000

	start := time.Now()
	if err := bpf.Validate(filters.BPFProg(filters.Filter4)); err != nil {
		return nil, err
	}
	res.StartupMS[BPF] = time.Since(start).Seconds() * 1000

	start = time.Now()
	if _, err := m3.Compile(m3.Prog(filters.Filter4, m3.View), m3.View); err != nil {
		return nil, err
	}
	res.StartupMS[M3View] = time.Since(start).Seconds() * 1000

	start = time.Now()
	rw, err := sfi.Rewrite(filters.Prog(filters.Filter4))
	if err != nil {
		return nil, err
	}
	if err := sfi.Validate(rw); err != nil {
		return nil, err
	}
	res.StartupMS[SFI] = time.Since(start).Seconds() * 1000

	// Curve and crossovers.
	total := func(a Approach, pkts int) float64 {
		return res.StartupMS[a] + res.PerPacketUS[a]*float64(pkts)/1000
	}
	step := maxPackets / 20
	if step == 0 {
		step = 1
	}
	for p := 0; p <= maxPackets; p += step {
		pt := Fig9Point{Packets: p}
		for _, a := range Approaches {
			pt.MS[a] = total(a, p)
		}
		res.Curve = append(res.Curve, pt)
	}
	for _, a := range Approaches {
		if a == PCC {
			continue
		}
		gap := res.PerPacketUS[a] - res.PerPacketUS[PCC]
		if gap <= 0 {
			res.CrossoverPackets[a] = -1 // never
			continue
		}
		startupGap := (res.StartupMS[PCC] - res.StartupMS[a]) * 1000 // µs
		res.CrossoverPackets[a] = int(startupGap/gap) + 1
	}
	return res, nil
}

// --- Checksum experiment ---------------------------------------------------

// ChecksumResult reports the §4 loop experiment.
type ChecksumResult struct {
	Instructions int
	LoopInstrs   int
	BinarySize   int
	Validation   time.Duration
	// SpeedupVsC is the cycle ratio of the "standard C" 32-bit loop to
	// the optimized 64-bit PCC routine (paper: "a factor of two").
	SpeedupVsC float64
}

// Checksum certifies the looping checksum routine through the full PCC
// pipeline (invariant table in the binary) and measures it against the
// word32 baseline over an n-packet trace.
func Checksum(n int) (*ChecksumResult, error) {
	pol := policy.PacketFilter()
	cert, err := pcc.Certify(filters.SrcChecksum, pol,
		map[string]logic.Pred{"loop": filters.ChecksumInvariant()})
	if err != nil {
		return nil, err
	}
	ext, stats, err := pcc.Validate(cert.Binary, pol)
	if err != nil {
		return nil, err
	}

	asm := alpha.MustAssemble(filters.SrcChecksum)
	baseline := alpha.MustAssemble(filters.SrcChecksumWord32)
	env := filters.Env{}
	var fast, slow int64
	for _, p := range Trace(n) {
		r1, c1, err := env.Exec(ext.Prog, p.Data, machine.Unchecked)
		if err != nil {
			return nil, err
		}
		r2, c2, err := env.Exec(baseline.Prog, p.Data, machine.Unchecked)
		if err != nil {
			return nil, err
		}
		if r1 != r2 {
			return nil, fmt.Errorf("checksum mismatch: %#x vs %#x", r1, r2)
		}
		fast += c1
		slow += c2
	}
	return &ChecksumResult{
		Instructions: cert.Instructions,
		LoopInstrs:   asm.Labels["fold"] - asm.Labels["loop"],
		BinarySize:   len(cert.Binary),
		Validation:   stats.Time,
		SpeedupVsC:   float64(slow) / float64(fast),
	}, nil
}
