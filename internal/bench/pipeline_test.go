package bench

import (
	"runtime"
	"testing"
)

// TestPipelineExperiment runs the validation-pipeline experiment and
// enforces the acceptance bars: warm-cache re-install >= 10x faster
// than cold validation, and — when enough cores are available — a
// >= 2x wall-clock win for batch-installing the four paper filters
// concurrently.
func TestPipelineExperiment(t *testing.T) {
	res, err := Pipeline(3)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + FormatPipeline(res))

	if res.CacheSpeedup < 10 {
		t.Errorf("warm install speedup = %.1fx, want >= 10x (cold %.0f µs, warm %.1f µs)",
			res.CacheSpeedup, res.ColdMicros, res.WarmMicros)
	}
	if res.Stats.CacheHits == 0 {
		t.Error("warm rounds produced no cache hits")
	}
	if res.Stats.Rejections != 0 {
		t.Errorf("pipeline experiment rejected %d valid installs", res.Stats.Rejections)
	}

	if runtime.GOMAXPROCS(0) >= 4 {
		if res.ParallelSpeedup < 2 {
			t.Errorf("parallel batch speedup = %.2fx on %d cores, want >= 2x (serial %.2f ms, parallel %.2f ms)",
				res.ParallelSpeedup, res.Workers, res.SerialMS, res.ParallelMS)
		}
	} else {
		t.Logf("only %d core(s): parallel-speedup bar (>= 2x on >= 4 cores) not applicable; measured %.2fx",
			runtime.GOMAXPROCS(0), res.ParallelSpeedup)
	}
}
