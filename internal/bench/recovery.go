// Verified-recovery benchmark: the boot-time cost of replaying a
// durable filter journal through the full PCC pipeline. Recovery
// treats the disk as just another untrusted code producer — every
// journaled binary is re-proved before it reaches the dispatch table —
// so replay cost is validation cost, and the content-addressed proof
// cache is what makes it affordable: a production journal holds many
// installs of few distinct binaries (reinstalls, owner churn,
// retrofit re-applications), and a warm replay proves each distinct
// binary once and serves the rest from the cache. The cold
// configuration (proof cache disabled) is the honest baseline: every
// record pays the full parse → LF signature → VC generation → LF
// check → WCET pipeline. The headline is the warm-over-cold
// records/sec ratio, gated by benchcheck -min-warm-recovery-speedup.
package bench

import (
	"context"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	pcc "repro"
	"repro/internal/filters"
	"repro/internal/kernel"
	"repro/internal/policy"
	"repro/internal/store"
)

// RecoveryRecords is the journal length the benchmark replays: many
// records over the few distinct paper binaries, the shape a real
// journal has after owner churn.
const RecoveryRecords = 200

// RecoveryTrials mirrors DispatchTrials: timing rounds per
// configuration, best kept.
const RecoveryTrials = 3

// RecoveryRow is one configuration's measured replay: Records journal
// records re-validated and installed into a fresh kernel.
type RecoveryRow struct {
	Config   string // cold (no proof cache) | warm (content-addressed cache)
	Records  int
	Distinct int // distinct binaries among the records
	Restored int
	Wall     time.Duration
	P99      time.Duration // per-record restore latency, 99th percentile
}

// RecordsPerSec is the replay rate this configuration sustained.
func (r RecoveryRow) RecordsPerSec() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Records) / r.Wall.Seconds()
}

// Recovery builds one journal of nrec install records cycling through
// the certified paper corpus (distinct owners, so every record
// restores) and measures Kernel.Recover over it cold and warm. Every
// trial replays the same on-disk journal into a fresh kernel; the best
// of RecoveryTrials rounds is kept per configuration.
func Recovery(nrec int) ([]RecoveryRow, error) {
	dir, err := os.MkdirTemp("", "pcc-bench-recovery-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	var bins [][]byte
	for _, f := range filters.All {
		cert, err := pcc.Certify(filters.Source(f), policy.PacketFilter(), nil)
		if err != nil {
			return nil, fmt.Errorf("certify %v: %w", f, err)
		}
		bins = append(bins, cert.Binary)
	}
	s, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		return nil, err
	}
	for i := 0; i < nrec; i++ {
		if _, err := s.Append(store.KindInstall, fmt.Sprintf("o-%d", i), bins[i%len(bins)]); err != nil {
			s.Close()
			return nil, err
		}
	}
	if err := s.Close(); err != nil {
		return nil, err
	}

	configs := []struct {
		name string
		mk   func() *kernel.Kernel
	}{
		{"cold", func() *kernel.Kernel { return kernel.NewWithCacheSize(0) }},
		{"warm", kernel.New},
	}
	var rows []RecoveryRow
	for _, cfg := range configs {
		var best RecoveryRow
		for trial := 0; trial < RecoveryTrials; trial++ {
			k := cfg.mk()
			s, err := store.Open(dir, store.Options{NoSync: true})
			if err != nil {
				return nil, err
			}
			start := time.Now()
			rep, err := k.Recover(context.Background(), s)
			wall := time.Since(start)
			cerr := s.Close()
			if err != nil {
				return nil, fmt.Errorf("recover (%s): %w", cfg.name, err)
			}
			if cerr != nil {
				return nil, cerr
			}
			if rep.Restored != nrec || len(rep.Skipped) != 0 {
				return nil, fmt.Errorf("recover (%s): restored %d of %d, %d skipped — the benchmark journal must replay losslessly",
					cfg.name, rep.Restored, nrec, len(rep.Skipped))
			}
			if best.Wall == 0 || wall < best.Wall {
				best = RecoveryRow{
					Config:   cfg.name,
					Records:  nrec,
					Distinct: len(bins),
					Restored: rep.Restored,
					Wall:     wall,
					P99:      recordP99(rep.RecordNanos),
				}
			}
		}
		rows = append(rows, best)
	}
	return rows, nil
}

// recordP99 is the 99th-percentile per-record restore latency.
func recordP99(nanos []int64) time.Duration {
	if len(nanos) == 0 {
		return 0
	}
	sorted := append([]int64(nil), nanos...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := len(sorted) * 99 / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return time.Duration(sorted[idx])
}

// WarmRecoverySpeedup is the headline: warm records/sec over cold.
func WarmRecoverySpeedup(rows []RecoveryRow) float64 {
	var cold, warm float64
	for _, r := range rows {
		switch r.Config {
		case "cold":
			cold = r.RecordsPerSec()
		case "warm":
			warm = r.RecordsPerSec()
		}
	}
	if cold <= 0 {
		return 0
	}
	return warm / cold
}

// FormatRecovery renders the recovery table with the headline ratio.
func FormatRecovery(rows []RecoveryRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Verified recovery: journal replay through the full proof-checking pipeline\n")
	fmt.Fprintf(&b, "(%d records over %d distinct binaries; best of %d trials per config)\n",
		RecoveryRecords, len(filters.All), RecoveryTrials)
	fmt.Fprintf(&b, "  %-6s %9s %12s %14s %12s\n", "config", "records", "wall", "records/sec", "p99/record")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-6s %9d %12s %14.0f %12s\n",
			r.Config, r.Records, r.Wall.Round(time.Microsecond),
			r.RecordsPerSec(), r.P99.Round(time.Microsecond))
	}
	fmt.Fprintf(&b, "  warm replay speedup: %.1fx (the proof cache is what makes reboot affordable)\n",
		WarmRecoverySpeedup(rows))
	return b.String()
}
