package bench

import (
	"strings"
	"testing"
)

func TestFig8SmallTraceShape(t *testing.T) {
	rows, err := Fig8(5000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	if bad := ShapeCheck(rows); len(bad) != 0 {
		t.Fatalf("shape violations:\n%s\n%s", strings.Join(bad, "\n"), FormatFig8(rows))
	}
	out := FormatFig8(rows)
	if !strings.Contains(out, "Filter 4") || !strings.Contains(out, "BPF") {
		t.Errorf("format missing content:\n%s", out)
	}
}

func TestTable1(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		if r.Instructions == 0 || r.BinarySize == 0 || r.Validation <= 0 {
			t.Errorf("row %d degenerate: %+v", i, r)
		}
		// §2.3: proofs are "about 3 times larger than the code"; allow
		// a generous band.
		ratio := float64(r.ProofBytes) / float64(r.CodeBytes)
		if ratio < 1 || ratio > 40 {
			t.Errorf("%v: proof/code ratio %.1f out of band", r.Filter, ratio)
		}
	}
	// Sizes must grow from Filter 1 to Filter 3 (the largest filter).
	if !(rows[0].BinarySize < rows[2].BinarySize) {
		t.Errorf("binary sizes not ordered: %d vs %d", rows[0].BinarySize, rows[2].BinarySize)
	}
	_ = FormatTable1(rows)
}

func TestFig7(t *testing.T) {
	cert, err := Fig7()
	if err != nil {
		t.Fatal(err)
	}
	lay := cert.Layout
	if lay.CodeLen == 0 || lay.ProofLen == 0 || lay.RelocLen == 0 {
		t.Fatalf("degenerate layout: %s", lay)
	}
	if lay.CodeOff >= lay.RelocOff || lay.RelocOff >= lay.ProofOff {
		t.Fatalf("sections out of order: %s", lay)
	}
	// 7 instructions = 28 bytes of code + a length header.
	if lay.CodeLen < 28 || lay.CodeLen > 40 {
		t.Errorf("code section %d bytes, want ~29", lay.CodeLen)
	}
	out := FormatFig7(lay)
	if !strings.Contains(out, "paper") {
		t.Errorf("format missing paper row:\n%s", out)
	}
}

func TestFig9(t *testing.T) {
	res, err := Fig9(3000, 50000)
	if err != nil {
		t.Fatal(err)
	}
	// PCC must eventually beat every other approach.
	for _, a := range Approaches {
		if a == PCC {
			continue
		}
		if res.CrossoverPackets[a] < 0 {
			t.Errorf("PCC never catches up with %v", a)
		}
	}
	// BPF's crossover must come earliest (largest per-packet gap), SFI
	// last — the paper's ordering.
	if !(res.CrossoverPackets[BPF] < res.CrossoverPackets[M3View] &&
		res.CrossoverPackets[M3View] < res.CrossoverPackets[SFI]) {
		t.Errorf("crossover ordering violated: %v", res.CrossoverPackets)
	}
	if len(res.Curve) < 10 {
		t.Errorf("curve too sparse: %d points", len(res.Curve))
	}
	// The curve is monotone in packets for every approach.
	for i := 1; i < len(res.Curve); i++ {
		for _, a := range Approaches {
			if res.Curve[i].MS[a] < res.Curve[i-1].MS[a] {
				t.Fatalf("curve not monotone for %v", a)
			}
		}
	}
	_ = FormatFig9(res)
}

func TestChecksumExperiment(t *testing.T) {
	res, err := Checksum(300)
	if err != nil {
		t.Fatal(err)
	}
	if res.LoopInstrs != 8 {
		t.Errorf("loop = %d instructions, want 8", res.LoopInstrs)
	}
	if res.SpeedupVsC < 1.5 || res.SpeedupVsC > 3.5 {
		t.Errorf("speedup vs C = %.2f, expected ~2x", res.SpeedupVsC)
	}
	if res.Validation <= 0 || res.BinarySize == 0 {
		t.Errorf("degenerate result: %+v", res)
	}
	_ = FormatChecksum(res)
}

func TestTraceDeterminism(t *testing.T) {
	a := Trace(100)
	b := Trace(100)
	for i := range a {
		if string(a[i].Data) != string(b[i].Data) {
			t.Fatal("trace not deterministic")
		}
	}
}

func TestShapeCheckCatchesViolations(t *testing.T) {
	rows := []Fig8Row{{
		Filter: 1,
		// PCC slower than SFI: ordering violated.
		Micros: [numApproaches]float64{1.0, 0.5, 0.1, 0.2},
	}}
	if bad := ShapeCheck(rows); len(bad) == 0 {
		t.Fatal("distorted ordering passed the shape check")
	}
	rows[0].Micros = [numApproaches]float64{0.3, 0.2, 0.12, 0.1} // BPF only 3x
	if bad := ShapeCheck(rows); len(bad) == 0 {
		t.Fatal("weak BPF ratio passed the shape check")
	}
}
