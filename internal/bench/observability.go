// Observability overhead: what always-on profiling and telemetry cost
// on the dispatch hot path. The repo's claim is that compiled-backend
// profiling is cheap enough to leave on in production — per-block
// counters batched in the threaded-code runner, expanded and merged
// once per batch — instead of rerouting dispatch to the interpreter.
// This benchmark measures that claim: vectorized dispatch throughput
// across backend × profiling configurations, plus the fully
// instrumented posture (profiling + telemetry recorder + flight
// recorder, the `pccmon -serve` boot state). Every configuration's
// verdicts are cross-checked against the pure-Go reference, so a
// number from a diverging instrumented backend can never be reported.
package bench

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	pcc "repro"
	"repro/internal/filters"
	"repro/internal/kernel"
	"repro/internal/telemetry"
)

// ObservabilityRow is one instrumentation configuration's measured
// vectorized-dispatch throughput.
type ObservabilityRow struct {
	Backend   string // "interp" | "compiled"
	Profiling bool   // per-block cycle profiling enabled
	Observers bool   // telemetry recorder + flight recorder attached
	Windowed  bool   // recorder carries the sliding-window layer
	Packets   int
	Filters   int
	Wall      time.Duration
	Accepted  int
}

// Config names the configuration for display and JSON.
func (r ObservabilityRow) Config() string {
	s := r.Backend
	if r.Profiling {
		s += "+prof"
	} else {
		s += "+plain"
	}
	if r.Observers {
		s += "+obs"
	}
	if r.Windowed {
		s += "+win"
	}
	return s
}

// NsPerPacket is the measured host cost of dispatching one packet
// through all installed filters under this configuration.
func (r ObservabilityRow) NsPerPacket() float64 {
	if r.Packets == 0 {
		return 0
	}
	return float64(r.Wall.Nanoseconds()) / float64(r.Packets)
}

// PPS is the measured host packets-per-second throughput.
func (r ObservabilityRow) PPS() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Packets) / r.Wall.Seconds()
}

// observabilityConfigs is the measurement matrix in display order:
// each backend plain then profiled, the fully observed posture last.
var observabilityConfigs = []struct {
	backend   kernel.Backend
	profiling bool
	observers bool
	windowed  bool
}{
	{kernel.BackendInterp, false, false, false},
	{kernel.BackendInterp, true, false, false},
	{kernel.BackendCompiled, false, false, false},
	{kernel.BackendCompiled, true, false, false},
	{kernel.BackendCompiled, true, true, false},
	{kernel.BackendCompiled, true, true, true},
}

// Observability measures vectorized dispatch throughput across the
// instrumentation matrix over an n-packet trace with the four paper
// filters installed through the full certify→validate path. Rounds
// are interleaved across configurations (DispatchTrials of them) and
// each configuration's best is reported, same as Dispatch.
func Observability(n int) ([]ObservabilityRow, error) {
	pkts := Trace(n)
	raw := make([][]byte, len(pkts))
	for i, p := range pkts {
		raw[i] = p.Data
	}

	// Reference verdict census: every configuration must reproduce it.
	wantAccepts := 0
	for _, p := range pkts {
		for _, f := range filters.All {
			if filters.Reference(f, p.Data) {
				wantAccepts++
			}
		}
	}

	kernels := make([]*kernel.Kernel, len(observabilityConfigs))
	for ci, cfg := range observabilityConfigs {
		k := kernel.New()
		if cfg.observers {
			if cfg.windowed {
				k.SetRecorder(telemetry.NewWith(telemetry.Options{
					Window: &telemetry.WindowOptions{},
				}))
			} else {
				k.SetRecorder(telemetry.New())
			}
			k.SetFlightRecorder(telemetry.NewFlightRecorder(0))
		}
		if err := k.SetBackend(cfg.backend); err != nil {
			return nil, err
		}
		for _, f := range filters.All {
			cert, err := pcc.Certify(filters.Source(f), k.FilterPolicy(), nil)
			if err != nil {
				return nil, fmt.Errorf("%v: %w", f, err)
			}
			if err := k.InstallFilter(fmt.Sprintf("proc-%d", f), cert.Binary); err != nil {
				return nil, fmt.Errorf("%v: %w", f, err)
			}
		}
		// Profiling goes on after install so the accumulators exist
		// before the first timed round, as they would in production.
		k.SetProfiling(cfg.profiling)
		kernels[ci] = k
	}

	rows := make([]ObservabilityRow, len(observabilityConfigs))
	for trial := 0; trial < DispatchTrials; trial++ {
		for ci, cfg := range observabilityConfigs {
			runtime.GC()

			k := kernels[ci]
			accepted := 0
			start := time.Now()
			for lo := 0; lo < len(raw); lo += DispatchBatchSize {
				hi := lo + DispatchBatchSize
				if hi > len(raw) {
					hi = len(raw)
				}
				out, err := k.DeliverPackets(raw[lo:hi])
				if err != nil {
					return nil, err
				}
				for _, acc := range out {
					accepted += len(acc)
				}
			}
			wall := time.Since(start)

			if accepted != wantAccepts {
				return nil, fmt.Errorf("observability %s: %d accepts, reference says %d",
					rows[ci].Config(), accepted, wantAccepts)
			}
			if trial == 0 || wall < rows[ci].Wall {
				rows[ci] = ObservabilityRow{
					Backend:   cfg.backend.String(),
					Profiling: cfg.profiling,
					Observers: cfg.observers,
					Windowed:  cfg.windowed,
					Packets:   len(pkts),
					Filters:   len(filters.All),
					Wall:      wall,
					Accepted:  accepted,
				}
			}
		}
	}
	return rows, nil
}

// ProfilingOverheadPct is the headline number: the throughput lost to
// per-block profiling on the compiled backend, as a percentage of the
// unprofiled compiled rate. Zero when either row is missing.
func ProfilingOverheadPct(rows []ObservabilityRow) float64 {
	var plain, prof float64
	for _, r := range rows {
		if r.Backend != "compiled" || r.Observers {
			continue
		}
		if r.Profiling {
			prof = r.PPS()
		} else {
			plain = r.PPS()
		}
	}
	if plain <= 0 || prof <= 0 {
		return 0
	}
	return (plain - prof) / plain * 100
}

// WindowOverheadPct is the sliding-window layer's headline: the
// throughput lost to windowed recording relative to the same fully
// observed posture with a plain (cumulative-only) recorder, as a
// percentage. Zero when either row is missing. Negative values (the
// windowed run measured faster, pure noise at these costs) are
// reported as-is; gates should clamp at zero.
func WindowOverheadPct(rows []ObservabilityRow) float64 {
	var plain, win float64
	for _, r := range rows {
		if !r.Observers {
			continue
		}
		if r.Windowed {
			win = r.PPS()
		} else {
			plain = r.PPS()
		}
	}
	if plain <= 0 || win <= 0 {
		return 0
	}
	return (plain - win) / plain * 100
}

// FormatObservability renders the instrumentation matrix with the
// headline profiling-overhead percentage.
func FormatObservability(rows []ObservabilityRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Observability overhead: batch%d dispatch under instrumentation (%d filters)\n",
		DispatchBatchSize, len(filters.All))
	fmt.Fprintf(&b, "%-20s %10s %12s %14s %10s\n",
		"config", "packets", "ns/packet", "packets/sec", "accepts")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20s %10d %12.1f %14.0f %10d\n",
			r.Config(), r.Packets, r.NsPerPacket(), r.PPS(), r.Accepted)
	}
	if pct := ProfilingOverheadPct(rows); pct != 0 {
		fmt.Fprintf(&b, "compiled profiling overhead: %.1f%% of unprofiled compiled throughput\n", pct)
	}
	if pct := WindowOverheadPct(rows); pct != 0 {
		fmt.Fprintf(&b, "windowed recording overhead: %.1f%% of plain-recorder observed throughput\n", pct)
	}
	return b.String()
}
