package bench

import (
	"fmt"
	"strings"

	"repro/internal/alpha"
	"repro/internal/bpf"
	"repro/internal/filters"
	"repro/internal/lf"
	"repro/internal/m3"
	"repro/internal/machine"
	"repro/internal/pccbin"
	"repro/internal/policy"
	"repro/internal/prover"
	"repro/internal/vcgen"
)

// Ablation studies for the design choices DESIGN.md calls out: the
// hash-consed proof encoding, and the sensitivity of the Figure 8
// shape to the BPF interpreter cost model.

// EncodingRow compares proof-section encodings for one filter.
type EncodingRow struct {
	Filter    filters.Filter
	ProofNode int // natural-deduction proof nodes
	LFNodes   int // LF term nodes (tree view)
	TreeBytes int // naive tree encoding
	DAGBytes  int // shipped hash-consed encoding
}

// EncodingAblation measures what DAG sharing buys on the four filters'
// proofs.
func EncodingAblation() ([]EncodingRow, error) {
	pol := policy.PacketFilter()
	rows := make([]EncodingRow, 0, len(filters.All))
	for _, f := range filters.All {
		prog := filters.Prog(f)
		gen, err := vcgen.Gen(prog, pol.Pre, pol.Post, nil)
		if err != nil {
			return nil, err
		}
		proof, err := prover.Prove(gen.SP)
		if err != nil {
			return nil, err
		}
		term, err := lf.EncodeProof(proof)
		if err != nil {
			return nil, err
		}
		code, err := alpha.Encode(prog)
		if err != nil {
			return nil, err
		}
		bin := &pccbin.Binary{PolicyName: pol.Name, Code: code, Proof: term}
		_, layout, err := bin.Marshal()
		if err != nil {
			return nil, err
		}
		rows = append(rows, EncodingRow{
			Filter:    f,
			ProofNode: proof.Size(),
			LFNodes:   lf.Size(term),
			TreeBytes: pccbin.TreeEncodedSize(term),
			DAGBytes:  layout.ProofLen,
		})
	}
	return rows, nil
}

// FormatEncodingAblation renders the encoding ablation.
func FormatEncodingAblation(rows []EncodingRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: proof encoding (naive tree vs shipped hash-consed DAG)\n")
	fmt.Fprintf(&b, "%-10s %12s %10s %12s %11s %9s\n",
		"", "proof nodes", "LF nodes", "tree bytes", "DAG bytes", "saving")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %12d %10d %12d %11d %8.1fx\n",
			r.Filter, r.ProofNode, r.LFNodes, r.TreeBytes, r.DAGBytes,
			float64(r.TreeBytes)/float64(r.DAGBytes))
	}
	return b.String()
}

// CostSensitivityRow reports whether the Figure 8 qualitative shape
// survives a given BPF dispatch-cost assumption.
type CostSensitivityRow struct {
	Dispatch   int
	BPFOverPCC [4]float64 // per filter
	ShapeHolds bool
}

// CostModelSensitivity sweeps the most influential modeling constant —
// the BPF interpreter's per-instruction dispatch cost — and reports
// the BPF/PCC ratio and whether the Figure 8 ordering survives. The
// paper's conclusions should not hinge on one calibration value.
func CostModelSensitivity(n int, dispatchValues []int) ([]CostSensitivityRow, error) {
	pkts := Trace(n)
	out := make([]CostSensitivityRow, 0, len(dispatchValues))
	for _, d := range dispatchValues {
		cm := bpf.DefaultCost
		cm.Dispatch = d
		row := CostSensitivityRow{Dispatch: d, ShapeHolds: true}
		for fi, f := range filters.All {
			v, err := buildVariants(f)
			if err != nil {
				return nil, err
			}
			var bpfCycles, pccCycles, sfiCycles, m3Cycles int64
			for _, p := range pkts {
				_, c := bpf.RunCycles(v.bpfProg, p.Data, &cm)
				bpfCycles += c
				_, c2, err := v.envPlain.Exec(v.pccProg, p.Data, machine.Unchecked)
				if err != nil {
					return nil, err
				}
				pccCycles += c2
				_, c3, err := v.envSFI.Exec(v.sfiProg, p.Data, machine.Unchecked)
				if err != nil {
					return nil, err
				}
				sfiCycles += c3
				_, c4, err := v.envPlain.Exec(v.m3Prog, p.Data, machine.Unchecked)
				if err != nil {
					return nil, err
				}
				m3Cycles += c4
			}
			row.BPFOverPCC[fi] = float64(bpfCycles) / float64(pccCycles)
			if !(pccCycles <= sfiCycles && sfiCycles <= m3Cycles && m3Cycles <= bpfCycles) {
				row.ShapeHolds = false
			}
		}
		out = append(out, row)
	}
	return out, nil
}

// M3CheckElimRow compares the naive safe-language compiler with its
// check-eliminating variant against PCC, per filter.
type M3CheckElimRow struct {
	Filter  filters.Filter
	NaiveUS float64
	OptUS   float64
	PCCUS   float64
	Instrs  [2]int // naive, optimized
}

// M3CheckElimAblation quantifies how far static check elimination (the
// best a safe-language compiler can do without the length bound in the
// type system) closes the M3→PCC gap.
func M3CheckElimAblation(n int) ([]M3CheckElimRow, error) {
	pkts := Trace(n)
	env := filters.Env{}
	rows := make([]M3CheckElimRow, 0, len(filters.All))
	for _, f := range filters.All {
		naive, err := m3.Compile(m3.Prog(f, m3.View), m3.View)
		if err != nil {
			return nil, err
		}
		opt, err := m3.CompileOptimized(m3.Prog(f, m3.View), m3.View)
		if err != nil {
			return nil, err
		}
		pccProg := filters.Prog(f)
		var cn, co, cp int64
		for _, p := range pkts {
			_, c1, err := env.Exec(naive, p.Data, machine.Unchecked)
			if err != nil {
				return nil, err
			}
			_, c2, err := env.Exec(opt, p.Data, machine.Unchecked)
			if err != nil {
				return nil, err
			}
			_, c3, err := env.Exec(pccProg, p.Data, machine.Unchecked)
			if err != nil {
				return nil, err
			}
			cn, co, cp = cn+c1, co+c2, cp+c3
		}
		rows = append(rows, M3CheckElimRow{
			Filter:  f,
			NaiveUS: machine.Micros(cn) / float64(len(pkts)),
			OptUS:   machine.Micros(co) / float64(len(pkts)),
			PCCUS:   machine.Micros(cp) / float64(len(pkts)),
			Instrs:  [2]int{len(naive), len(opt)},
		})
	}
	return rows, nil
}

// FormatM3CheckElim renders the check-elimination ablation.
func FormatM3CheckElim(rows []M3CheckElimRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: M3-VIEW static check elimination vs PCC (µs/packet)\n")
	fmt.Fprintf(&b, "%-10s %10s %12s %8s %14s %14s\n",
		"", "naive", "check-elim", "PCC", "elim/PCC", "instrs")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %10.2f %12.2f %8.2f %13.2fx %8d->%d\n",
			r.Filter, r.NaiveUS, r.OptUS, r.PCCUS, r.OptUS/r.PCCUS,
			r.Instrs[0], r.Instrs[1])
	}
	fmt.Fprintf(&b, "(even with every dominated check removed, the safe language cannot reach\n")
	fmt.Fprintf(&b, " PCC: the 64-byte length bound is not expressible in its type system)\n")
	return b.String()
}

// FormatCostSensitivity renders the sensitivity sweep.
func FormatCostSensitivity(rows []CostSensitivityRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: BPF dispatch-cost sensitivity (BPF/PCC ratio per filter)\n")
	fmt.Fprintf(&b, "%10s %8s %8s %8s %8s %8s\n", "dispatch", "F1", "F2", "F3", "F4", "shape")
	for _, r := range rows {
		holds := "holds"
		if !r.ShapeHolds {
			holds = "BROKEN"
		}
		fmt.Fprintf(&b, "%10d %8.1f %8.1f %8.1f %8.1f %8s\n",
			r.Dispatch, r.BPFOverPCC[0], r.BPFOverPCC[1], r.BPFOverPCC[2], r.BPFOverPCC[3], holds)
	}
	return b.String()
}
