// Package pcc is a from-scratch reproduction of proof-carrying code as
// described in Necula & Lee, "Safe Kernel Extensions Without Run-Time
// Checking" (OSDI '96). It implements the full Figure 1 lifecycle:
//
//	policy    := policy.PacketFilter()            // consumer publishes
//	bin, _, _ := pcc.Certify(src, policy, nil)    // producer certifies
//	ext, _, _ := pcc.Validate(bin.Bytes, policy)  // consumer validates
//	res, _    := ext.Run(state)                   // zero-check execution
//
// Certification assembles the program, computes its Floyd-style safety
// predicate (internal/vcgen), proves it automatically
// (internal/prover), and packages native code + LF proof into a PCC
// binary (internal/pccbin). Validation re-derives the safety predicate
// from the shipped machine code alone and typechecks the enclosed LF
// proof against it (internal/lf) — no cryptography, no trusted
// producer, and no run-time checks afterwards.
package pcc

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/alpha"
	"repro/internal/inferinv"
	"repro/internal/lf"
	"repro/internal/logic"
	"repro/internal/machine"
	"repro/internal/pccbin"
	"repro/internal/policy"
	"repro/internal/prover"
	"repro/internal/vcgen"
)

// Re-exported policy constructors, so that typical consumers only
// import this package.
var (
	// PacketFilterPolicy is the §3 packet-filter safety policy.
	PacketFilterPolicy = policy.PacketFilter
	// ResourceAccessPolicy is the §2 resource-access safety policy.
	ResourceAccessPolicy = policy.ResourceAccess
	// SFISegmentPolicy is the §3.1 SFI-segment safety policy.
	SFISegmentPolicy = policy.SFISegment
)

// CertResult is the producer-side output: the PCC binary and
// certification statistics.
type CertResult struct {
	// Binary is the marshaled PCC binary.
	Binary []byte
	// Layout is the Figure 7 section layout.
	Layout pccbin.Layout
	// Instructions is the native instruction count.
	Instructions int
	// ProofNodes is the size of the natural-deduction proof.
	ProofNodes int
	// LFNodes is the size of the encoded LF proof term.
	LFNodes int
	// ProveTime is the theorem-proving time.
	ProveTime time.Duration
	// SafetyPredicate is the certified predicate (for inspection).
	SafetyPredicate logic.Pred
}

// Certify assembles source code, proves it safe under the policy, and
// produces a PCC binary. Programs with loops must supply an invariant
// for each backward-branch target, keyed by label.
func Certify(src string, pol *policy.Policy, invariants map[string]logic.Pred) (*CertResult, error) {
	asm, err := alpha.Assemble(src)
	if err != nil {
		return nil, err
	}
	invByPC := map[int]logic.Pred{}
	for label, inv := range invariants {
		pc, ok := asm.Labels[label]
		if !ok {
			return nil, fmt.Errorf("pcc: invariant for unknown label %q", label)
		}
		invByPC[pc] = inv
	}
	return CertifyProgram(asm.Prog, pol, invByPC)
}

// CertifyAuto is Certify with automatic loop-invariant inference for
// the counted-loop idiom (internal/inferinv): the producer does not
// supply invariants; heuristically inferred ones are tried instead.
// Inference cannot compromise safety — a wrong guess fails
// certification, never validation — so this closes, for the common
// idiom, the gap §4 calls "the main obstacle in automating the
// generation of proofs".
func CertifyAuto(src string, pol *policy.Policy) (*CertResult, error) {
	asm, err := alpha.Assemble(src)
	if err != nil {
		return nil, err
	}
	invs := inferinv.Infer(asm.Prog, pol.Pre)
	return CertifyProgram(asm.Prog, pol, invs)
}

// CertifyProgram is Certify over an already-assembled program with
// invariants keyed by instruction index.
func CertifyProgram(prog []alpha.Instr, pol *policy.Policy, invariants map[int]logic.Pred) (*CertResult, error) {
	gen, err := vcgen.Gen(prog, pol.Pre, pol.Post, invariants)
	if err != nil {
		return nil, err
	}
	extra := pol.ExtraAxioms()
	start := time.Now()
	proof, err := prover.ProveWith(gen.SP, extra)
	if err != nil {
		return nil, fmt.Errorf("pcc: certification failed: %w", err)
	}
	proof = prover.Simplify(proof)
	proveTime := time.Since(start)

	term, err := lf.EncodeProofWith(proof, extra)
	if err != nil {
		return nil, err
	}
	code, err := alpha.Encode(prog)
	if err != nil {
		return nil, err
	}
	bin := &pccbin.Binary{
		PolicyName: pol.Name,
		SigHash:    signatureFor(pol).Fingerprint(),
		Code:       code,
		Proof:      term,
	}
	for pc, inv := range invariants {
		t, err := lf.EncodeStatePred(logic.NormPred(inv))
		if err != nil {
			return nil, fmt.Errorf("pcc: invariant at pc %d: %w", pc, err)
		}
		bin.Invariants = append(bin.Invariants, pccbin.Invariant{PC: pc, Pred: t})
	}
	data, layout, err := bin.Marshal()
	if err != nil {
		return nil, err
	}
	return &CertResult{
		Binary:          data,
		Layout:          layout,
		Instructions:    len(prog),
		ProofNodes:      proof.Size(),
		LFNodes:         lf.Size(term),
		ProveTime:       proveTime,
		SafetyPredicate: gen.SP,
	}, nil
}

// ValidationStats reports the one-time cost of validating a PCC binary
// (Table 1 of the paper), broken down by pipeline stage so a consumer
// can attribute where the cost went — the breakdown the kernel's
// telemetry recorder exports as child spans and per-stage latency
// histograms (internal/telemetry, docs/OBSERVABILITY.md).
type ValidationStats struct {
	// Time is the wall-clock validation time (parse + VC generation +
	// LF typechecking).
	Time time.Duration
	// Stage breakdown. The stages sum to within bookkeeping noise of
	// Time:
	//
	//	Parse    — binary unmarshal + native code + invariant decoding
	//	SigCheck — LF signature construction and rule-set fingerprint
	//	           comparison
	//	VCGen    — safety-predicate generation + LF encoding
	//	Check    — LF typechecking of the enclosed proof
	Parse    time.Duration
	SigCheck time.Duration
	VCGen    time.Duration
	Check    time.Duration
	// CheckSteps counts LF inference steps.
	CheckSteps int
	// VCNodes is the size (in LF term nodes) of the recomputed safety
	// predicate the proof was checked against — the "VC size" an audit
	// trail records per install decision.
	VCNodes int
	// ProofBytes is the encoded size of the binary's proof section —
	// the certificate's cost on the wire, the number proof-size
	// engineering (ACC-style certificate compression) must shrink.
	ProofBytes int
	// ProofNodes is the size (in LF term nodes) of the decoded proof
	// term, the in-memory counterpart of ProofBytes.
	ProofNodes int
	// HeapBytes approximates the heap cost of validation.
	HeapBytes uint64
	// BinarySize is the total PCC binary size in bytes.
	BinarySize int
}

// Extension is a validated kernel extension: native code the consumer
// may now run with no run-time checks.
type Extension struct {
	// Prog is the decoded native code.
	Prog []alpha.Instr
	// Policy is the policy the extension was validated against.
	Policy *policy.Policy
}

// Validate parses a PCC binary, recomputes the safety predicate of the
// enclosed native code under the published policy, and typechecks the
// enclosed proof. On success the returned Extension is safe to execute
// in the kernel's address space. Validation runs under DefaultLimits
// and no deadline; consumers wanting explicit budgets or cancellation
// use ValidateCtx.
func Validate(binary []byte, pol *policy.Policy) (*Extension, *ValidationStats, error) {
	return ValidateCtx(context.Background(), binary, pol, nil)
}

// fenced runs one validation stage inside a recover fence, converting
// a panic — typically tripped by adversarial bytes exercising a bug —
// into a structured PanicError rejection instead of taking down the
// consumer. The stage name and panic value survive into the audit
// trail.
func fenced(stage string, f func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			buf := make([]byte, 4096)
			buf = buf[:runtime.Stack(buf, false)]
			err = &PanicError{Stage: stage, Value: fmt.Sprint(r), Stack: string(buf)}
		}
	}()
	return f()
}

// asLimitErr maps the lower layers' typed budget errors (pccbin, lf)
// into the public ResourceLimitError so errors.Is(err,
// ErrResourceLimit) works across the whole stack. Checker interrupts
// carrying a context cause pass through unchanged — an expired
// deadline is a deadline, not a limit.
func asLimitErr(err error) error {
	var ble *pccbin.LimitError
	if errors.As(err, &ble) {
		return &ResourceLimitError{Axis: ble.Axis, Max: int64(ble.Max), Err: err}
	}
	var lle *lf.LimitError
	if errors.As(err, &lle) && lle.Err == nil {
		return &ResourceLimitError{Axis: lle.Axis, Max: int64(lle.Max), Err: err}
	}
	return err
}

// ValidateCtx is Validate with a context and explicit resource
// budgets: the adversarial-input hardening layer of the consumer. An
// already-expired context rejects before any byte of the binary is
// parsed (in particular, without running the proof checker);
// cancellation mid-check is honored within a bounded number of
// inference steps. lim == nil means DefaultLimits; a zero field in
// *lim means no budget on that axis. Every stage runs inside a
// recover fence, so a panic provoked by hostile bytes surfaces as a
// *PanicError rejection rather than a crash.
func ValidateCtx(ctx context.Context, binary []byte, pol *policy.Policy, lim *Limits) (*Extension, *ValidationStats, error) {
	limits := DefaultLimits()
	if lim != nil {
		limits = *lim
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, fmt.Errorf("pcc: validation aborted: %w", err)
	}
	if limits.MaxBinaryBytes > 0 && len(binary) > limits.MaxBinaryBytes {
		return nil, nil, &ResourceLimitError{
			Axis: "binary_bytes", Actual: int64(len(binary)), Max: int64(limits.MaxBinaryBytes)}
	}

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	stats := &ValidationStats{BinarySize: len(binary)}

	// Stage 1: decode — binary unmarshal (with term budgets), policy
	// and rule-set checks, native code and invariant decoding.
	var (
		bin        *pccbin.Binary
		sig        *lf.Signature
		prog       []alpha.Instr
		invariants map[int]logic.Pred
	)
	err := fenced("decode", func() error {
		var err error
		bin, err = pccbin.UnmarshalWithLimits(binary, pccbin.Limits{
			MaxTermNodes: limits.MaxTermNodes,
			MaxTermDepth: limits.MaxTermDepth,
		})
		if err != nil {
			return asLimitErr(err)
		}
		if limits.MaxProofBytes > 0 && bin.ProofBytes > limits.MaxProofBytes {
			return &ResourceLimitError{
				Axis: "proof_bytes", Actual: int64(bin.ProofBytes), Max: int64(limits.MaxProofBytes)}
		}
		if bin.PolicyName != pol.Name {
			return fmt.Errorf("pcc: binary certifies policy %q, consumer published %q",
				bin.PolicyName, pol.Name)
		}
		stats.Parse = time.Since(start)
		stats.ProofBytes = bin.ProofBytes
		// ProofNodes is a statistic, not a gate, but the proof is a
		// hash-consed DAG from an untrusted producer and DAGs expand to
		// trees under traversal — an unbounded walk is exponential in
		// wire bytes. Cap the walk at the term-node budget and accept
		// the floor on a bomb (the checker's step fuel rejects it
		// anyway).
		nodeCap := limits.MaxTermNodes
		if nodeCap <= 0 {
			nodeCap = DefaultLimits().MaxTermNodes
		}
		stats.ProofNodes = lf.SizeBounded(bin.Proof, nodeCap)

		mark := time.Now()
		sig = signatureFor(pol)
		if got, want := bin.SigHash, sig.Fingerprint(); got != want {
			return fmt.Errorf(
				"pcc: binary built against rule set %#x, consumer publishes %#x", got, want)
		}
		stats.SigCheck = time.Since(mark)

		mark = time.Now()
		if prog, err = alpha.Decode(bin.Code); err != nil {
			return err
		}
		if invariants, err = bin.DecodeInvariants(); err != nil {
			return err
		}
		stats.Parse += time.Since(mark)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, fmt.Errorf("pcc: validation aborted: %w", err)
	}

	// Stage 2: VC generation — recompute the safety predicate from the
	// shipped code alone and bound its size (the code is untrusted, so
	// the VC's size is attacker-influenced even though the generator is
	// ours).
	var spT lf.Term
	err = fenced("vcgen", func() error {
		mark := time.Now()
		gen, err := vcgen.Gen(prog, pol.Pre, pol.Post, invariants)
		if err != nil {
			return err
		}
		if spT, err = lf.EncodePred(gen.SP); err != nil {
			return err
		}
		stats.VCGen = time.Since(mark)
		stats.VCNodes = lf.Size(spT)
		if limits.MaxVCNodes > 0 && stats.VCNodes > limits.MaxVCNodes {
			return &ResourceLimitError{
				Axis: "vc_nodes", Actual: int64(stats.VCNodes), Max: int64(limits.MaxVCNodes)}
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, fmt.Errorf("pcc: validation aborted: %w", err)
	}

	// Stage 3: LF typechecking of the enclosed proof, under step fuel,
	// depth budget, and the context's cancellation.
	var checker *lf.Checker
	err = fenced("lfcheck", func() error {
		mark := time.Now()
		checker = lf.NewChecker(sig)
		checker.MaxSteps = limits.MaxCheckSteps
		checker.MaxDepth = limits.MaxTermDepth
		checker.Interrupt = ctx.Err
		if err := checker.Check(bin.Proof, lf.App{F: lf.Konst{Name: lf.CPf}, X: spT}); err != nil {
			return fmt.Errorf("pcc: proof validation failed: %w", asLimitErr(err))
		}
		stats.Check = time.Since(mark)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}

	stats.Time = time.Since(start)
	runtime.ReadMemStats(&after)
	stats.HeapBytes = after.TotalAlloc - before.TotalAlloc
	stats.CheckSteps = checker.Steps
	return &Extension{Prog: prog, Policy: pol}, stats, nil
}

// ValidationKey returns the content-addressed memoization key for
// "Validate(bin, pol)": SHA-256 over the binary bytes, the policy's
// full SHA-256 content digest, and the full digest of the rule set the
// policy publishes. Validation is a pure function of exactly these
// inputs, so a consumer may cache a successful validation under this
// key and skip VC generation and LF checking when the same binary is
// presented again — the kernel's proof cache (internal/kernel) does.
// Any change to the binary (tampered proof, truncated blob) or to the
// policy (different pre/post, different axioms) changes the key, so a
// cached entry can never be replayed against a policy it was not
// checked under. The policy side enters the key as full cryptographic
// digests — never a truncated fingerprint — so a producer cannot
// negotiate a colliding policy to smuggle a binary past validation
// under another policy.
func ValidationKey(bin []byte, pol *policy.Policy) [sha256.Size]byte {
	return NewKeyer(pol).Key(bin)
}

// Keyer computes ValidationKey with the policy-side digests
// precomputed, so the per-binary cost is one SHA-256 over the binary
// bytes. A consumer builds one Keyer per published policy (the digests
// summarize the policy's semantic content; they are fixed once the
// policy is published).
type Keyer struct {
	prefix [2 * sha256.Size]byte
}

// NewKeyer digests the policy and its published rule set once.
func NewKeyer(pol *policy.Policy) *Keyer {
	ky := &Keyer{}
	pd := pol.Digest()
	sd := signatureFor(pol).Digest()
	copy(ky.prefix[:sha256.Size], pd[:])
	copy(ky.prefix[sha256.Size:], sd[:])
	return ky
}

// Key returns the memoization key for validating bin under the keyer's
// policy.
func (ky *Keyer) Key(bin []byte) [sha256.Size]byte {
	h := sha256.New()
	h.Write(ky.prefix[:])
	h.Write(bin)
	var key [sha256.Size]byte
	h.Sum(key[:0])
	return key
}

// consumerSignature returns the consumer's base LF signature, built
// once — the signature is part of the published policy and a kernel
// constructs it at boot, not per binary.
var consumerSignature = sync.OnceValue(lf.NewSignature)

// signatureFor returns the signature a policy publishes: the base one,
// extended with the policy's own axiom schemas when it has any.
func signatureFor(pol *policy.Policy) *lf.Signature {
	extra := pol.ExtraAxioms()
	if extra == nil {
		return consumerSignature()
	}
	return lf.NewSignatureWith(extra)
}

// VetAxioms sanity-checks the schemas a policy wants to publish:
// names must not clash with the core rule set, parameters must be
// "$"-prefixed and bind every free variable, and every
// ground-evaluable schema is fuzzed for soundness in the 64-bit model.
// Vetting cannot prove soundness of schemas over the uninterpreted
// rd/wr/sel symbols — those the consumer must justify against its
// memory model, which is exactly the paper's division of labor for the
// published rule set.
func VetAxioms(axioms []*logic.Schema, trials int) error {
	rng := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	seen := map[string]bool{}
	for _, s := range axioms {
		if s.Name == "" {
			return fmt.Errorf("pcc: axiom with empty name")
		}
		if _, clash := prover.Axioms[s.Name]; clash {
			return fmt.Errorf("pcc: axiom %q clashes with the core rule set", s.Name)
		}
		if seen[s.Name] {
			return fmt.Errorf("pcc: duplicate axiom %q", s.Name)
		}
		seen[s.Name] = true
		params := map[string]bool{}
		for _, p := range s.Params {
			if len(p) == 0 || p[0] != '$' {
				return fmt.Errorf("pcc: axiom %q: parameter %q must start with '$'", s.Name, p)
			}
			params[p] = true
		}
		check := func(pred logic.Pred) error {
			for v := range logic.FreeVars(pred) {
				if !params[v] {
					return fmt.Errorf("pcc: axiom %q: unbound variable %q", s.Name, v)
				}
			}
			return nil
		}
		if err := check(s.Concl); err != nil {
			return err
		}
		evaluable := true
		env := map[string]uint64{}
		for _, p := range s.Params {
			env[p] = 1
		}
		if _, ok := logic.EvalPred(s.Concl, env); !ok {
			evaluable = false
		}
		for _, prem := range s.Prems {
			if err := check(prem); err != nil {
				return err
			}
			if _, ok := logic.EvalPred(prem, env); !ok {
				evaluable = false
			}
		}
		if !evaluable {
			continue // rd/wr/sel schemas: consumer's responsibility
		}
		for trial := 0; trial < trials; trial++ {
			for _, p := range s.Params {
				switch next() % 4 {
				case 0:
					env[p] = next() % 16
				case 1:
					env[p] = ^uint64(0) - next()%16
				default:
					env[p] = next()
				}
			}
			hold := true
			for _, prem := range s.Prems {
				v, _ := logic.EvalPred(prem, env)
				if !v {
					hold = false
					break
				}
			}
			if !hold {
				continue
			}
			if v, _ := logic.EvalPred(s.Concl, env); !v {
				return fmt.Errorf("pcc: axiom %q is UNSOUND at %v", s.Name, env)
			}
		}
	}
	return nil
}

// Run executes the validated extension on the real (unchecked) machine
// with the given initial state — the zero-run-time-overhead execution
// the paper's title promises. fuel bounds the instruction count (loops
// certified with invariants still terminate on packet data, but the
// kernel is entitled to a budget).
func (e *Extension) Run(s *machine.State, fuel int) (machine.Result, error) {
	return machine.Interp(e.Prog, s, machine.Unchecked, &machine.DEC21064, fuel)
}

// RunChecked executes on the abstract machine (every rd/wr checked) —
// used by tests to confirm that validated extensions never trip a
// check, per the Safety Theorem.
func (e *Extension) RunChecked(s *machine.State, fuel int) (machine.Result, error) {
	return machine.Interp(e.Prog, s, machine.Checked, &machine.DEC21064, fuel)
}
