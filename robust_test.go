package pcc_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	pcc "repro"
	"repro/internal/filters"
	"repro/internal/logic"
	"repro/internal/policy"
)

// certifiedFilter certifies one paper filter for the hardening tests.
func certifiedFilter(t *testing.T) ([]byte, *policy.Policy) {
	t.Helper()
	pol := pcc.PacketFilterPolicy()
	cert, err := pcc.Certify(filters.SrcFilter2, pol, nil)
	if err != nil {
		t.Fatal(err)
	}
	return cert.Binary, pol
}

// TestValidateCtxExpiredContext: an already-expired context must
// reject before the proof checker runs — no stats, a deadline-classed
// error, and (crucially) no time spent checking.
func TestValidateCtxExpiredContext(t *testing.T) {
	bin, pol := certifiedFilter(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	ext, stats, err := pcc.ValidateCtx(ctx, bin, pol, nil)
	if err == nil {
		t.Fatal("expired context validated")
	}
	if ext != nil || stats != nil {
		t.Fatal("expired context returned a result")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded in chain, got %v", err)
	}
	if got := pcc.RejectReason(err); got != "deadline" {
		t.Fatalf("RejectReason = %q, want deadline", got)
	}
}

// TestValidateCtxCanceledContext: cancellation is honored the same
// way.
func TestValidateCtxCanceledContext(t *testing.T) {
	bin, pol := certifiedFilter(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := pcc.ValidateCtx(ctx, bin, pol, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("want Canceled, got %v", err)
	}
}

// TestValidateCtxBinaryBytesLimit: the very first budget checked is
// the whole-binary size.
func TestValidateCtxBinaryBytesLimit(t *testing.T) {
	bin, pol := certifiedFilter(t)
	lim := pcc.DefaultLimits()
	lim.MaxBinaryBytes = 16
	_, _, err := pcc.ValidateCtx(context.Background(), bin, pol, &lim)
	if !errors.Is(err, pcc.ErrResourceLimit) {
		t.Fatalf("want ErrResourceLimit, got %v", err)
	}
	var rle *pcc.ResourceLimitError
	if !errors.As(err, &rle) || rle.Axis != "binary_bytes" {
		t.Fatalf("want binary_bytes axis, got %v", err)
	}
	if got := pcc.RejectReason(err); got != "limit" {
		t.Fatalf("RejectReason = %q, want limit", got)
	}
}

// TestValidateCtxProofBytesLimit: a certificate-size budget smaller
// than the real proof rejects with a typed limit error.
func TestValidateCtxProofBytesLimit(t *testing.T) {
	bin, pol := certifiedFilter(t)
	lim := pcc.DefaultLimits()
	lim.MaxProofBytes = 8
	_, _, err := pcc.ValidateCtx(context.Background(), bin, pol, &lim)
	var rle *pcc.ResourceLimitError
	if !errors.As(err, &rle) || rle.Axis != "proof_bytes" {
		t.Fatalf("want proof_bytes limit, got %v", err)
	}
}

// TestValidateCtxCheckStepsLimit: starving the checker's step fuel
// turns a valid binary into a limit rejection — and the error says
// limit, not invalid proof.
func TestValidateCtxCheckStepsLimit(t *testing.T) {
	bin, pol := certifiedFilter(t)
	lim := pcc.DefaultLimits()
	lim.MaxCheckSteps = 10
	_, _, err := pcc.ValidateCtx(context.Background(), bin, pol, &lim)
	if !errors.Is(err, pcc.ErrResourceLimit) {
		t.Fatalf("want ErrResourceLimit, got %v", err)
	}
	if got := pcc.RejectReason(err); got != "limit" {
		t.Fatalf("RejectReason = %q, want limit", got)
	}
}

// TestValidateCtxTermDepthLimit: a depth budget below the proof's real
// nesting rejects at decode time as a typed limit.
func TestValidateCtxTermDepthLimit(t *testing.T) {
	bin, pol := certifiedFilter(t)
	lim := pcc.DefaultLimits()
	lim.MaxTermDepth = 2
	_, _, err := pcc.ValidateCtx(context.Background(), bin, pol, &lim)
	var rle *pcc.ResourceLimitError
	if !errors.As(err, &rle) || rle.Axis != "term_depth" {
		t.Fatalf("want term_depth limit, got %v", err)
	}
}

// TestDefaultLimitsAcceptPaperWorkloads: the default budgets must be
// invisible to every legitimate workload — the four paper filters and
// the looping IP checksum validate with unchanged verdicts, and
// Validate (which uses DefaultLimits) agrees with an unlimited
// ValidateCtx.
func TestDefaultLimitsAcceptPaperWorkloads(t *testing.T) {
	pol := pcc.PacketFilterPolicy()
	check := func(name string, bin []byte, p *policy.Policy) {
		t.Helper()
		if _, _, err := pcc.Validate(bin, p); err != nil {
			t.Fatalf("%s: default limits rejected a legitimate binary: %v", name, err)
		}
		none := pcc.Limits{} // all axes unlimited
		if _, _, err := pcc.ValidateCtx(context.Background(), bin, p, &none); err != nil {
			t.Fatalf("%s: unlimited validation rejected: %v", name, err)
		}
	}
	for _, f := range filters.All {
		cert, err := pcc.Certify(filters.Source(f), pol, nil)
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		check(f.String(), cert.Binary, pol)
	}
	ckCert, err := pcc.Certify(filters.SrcChecksum, pol,
		map[string]logic.Pred{"loop": filters.ChecksumInvariant()})
	if err != nil {
		t.Fatalf("checksum: %v", err)
	}
	check("checksum", ckCert.Binary, pol)
}

// TestPanicErrorRendering: the structured panic rejection carries the
// stage and value.
func TestPanicErrorRendering(t *testing.T) {
	e := &pcc.PanicError{Stage: "decode", Value: "boom"}
	if !strings.Contains(e.Error(), "decode") || !strings.Contains(e.Error(), "boom") {
		t.Fatalf("unhelpful panic error: %v", e)
	}
	if got := pcc.RejectReason(e); got != "panic" {
		t.Fatalf("RejectReason = %q, want panic", got)
	}
}
