package pcc_test

// End-to-end tests of the command-line tools: each binary is built
// once and driven the way a user would drive it, covering the full
// producer → binary-on-disk → consumer pipeline including policy
// files, pcap replay, and rejection paths.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var (
	buildOnce sync.Once
	buildDir  string
	buildErr  error
)

// tool builds all commands once and returns the path of the named one.
func tool(t *testing.T, name string) string {
	t.Helper()
	buildOnce.Do(func() {
		buildDir, buildErr = os.MkdirTemp("", "pcc-tools-")
		if buildErr != nil {
			return
		}
		cmd := exec.Command("go", "build", "-o", buildDir+string(filepath.Separator), "./cmd/...")
		out, err := cmd.CombinedOutput()
		if err != nil {
			buildErr = err
			buildDir = string(out)
		}
	})
	if buildErr != nil {
		t.Fatalf("building tools: %v\n%s", buildErr, buildDir)
	}
	return filepath.Join(buildDir, name)
}

func run(t *testing.T, name string, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(tool(t, name), args...)
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func mustRun(t *testing.T, name string, args ...string) string {
	t.Helper()
	out, err := run(t, name, args...)
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", name, args, err, out)
	}
	return out
}

func TestCLIAssembleLoadDump(t *testing.T) {
	dir := t.TempDir()
	bin := filepath.Join(dir, "f4.pcc")

	out := mustRun(t, "pccasm", "-builtin", "filter4", "-v", "-o", bin)
	if !strings.Contains(out, "wrote") || !strings.Contains(out, "proof") {
		t.Fatalf("pccasm output:\n%s", out)
	}

	out = mustRun(t, "pccload", "-run", "-packets", "2000", bin)
	if !strings.Contains(out, "VALIDATED") || !strings.Contains(out, "accepted") {
		t.Fatalf("pccload output:\n%s", out)
	}

	out = mustRun(t, "pccdump", "-symbols", bin)
	for _, frag := range []string{"policy:", "native code", "CMPULT", "foralle"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("pccdump missing %q:\n%s", frag, out)
		}
	}
}

func TestCLIRejectsTamperedBinary(t *testing.T) {
	dir := t.TempDir()
	bin := filepath.Join(dir, "f1.pcc")
	mustRun(t, "pccasm", "-builtin", "filter1", "-o", bin)

	data, err := os.ReadFile(bin)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-5] ^= 0xff
	bad := filepath.Join(dir, "bad.pcc")
	if err := os.WriteFile(bad, data, 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := run(t, "pccload", bad)
	if err == nil {
		t.Fatalf("tampered binary loaded:\n%s", out)
	}
	if !strings.Contains(out, "REJECTED") {
		t.Fatalf("expected REJECTED, got:\n%s", out)
	}
}

func TestCLIWrongPolicyRejected(t *testing.T) {
	dir := t.TempDir()
	bin := filepath.Join(dir, "ra.pcc")
	mustRun(t, "pccasm", "-builtin", "resource-access", "-o", bin)
	out, err := run(t, "pccload", "-policy", "packet-filter/v1", bin)
	if err == nil {
		t.Fatalf("cross-policy load succeeded:\n%s", out)
	}
}

func TestCLIChecksumWithInvariant(t *testing.T) {
	dir := t.TempDir()
	bin := filepath.Join(dir, "ck.pcc")
	mustRun(t, "pccasm", "-builtin", "checksum", "-o", bin)
	out := mustRun(t, "pccdump", bin)
	if !strings.Contains(out, "invariant table") {
		t.Fatalf("invariant table missing:\n%s", out)
	}
	mustRun(t, "pccload", bin)
}

func TestCLIPolicyFileFlow(t *testing.T) {
	dir := t.TempDir()
	polFile := filepath.Join(dir, "pol.txt")
	err := os.WriteFile(polFile, []byte(`
name:       entry-reader/v1
convention: r0 holds the entry
pre:        rd(r0) /\ rd(r0 + 8)
post:       true
`), 0o644)
	if err != nil {
		t.Fatal(err)
	}
	srcFile := filepath.Join(dir, "prog.s")
	if err := os.WriteFile(srcFile, []byte("LDQ r1, 0(r0)\nRET\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(dir, "prog.pcc")
	mustRun(t, "pccasm", "-policy-file", polFile, "-o", bin, srcFile)
	mustRun(t, "pccload", "-policy-file", polFile, bin)
	mustRun(t, "pccpolicy", "check", polFile)

	out := mustRun(t, "pccpolicy", "list")
	if !strings.Contains(out, "packet-filter/v1") {
		t.Fatalf("pccpolicy list:\n%s", out)
	}
}

func TestCLINegotiate(t *testing.T) {
	dir := t.TempDir()
	weak := filepath.Join(dir, "weak.txt")
	err := os.WriteFile(weak, []byte(
		"name: weak/v1\npre: 64 <= r2 /\\ (ALL i. (i < r2 /\\ (i & 7) = 0) => rd(r1 + i))\n"), 0o644)
	if err != nil {
		t.Fatal(err)
	}
	out := mustRun(t, "pccpolicy", "negotiate", "-base", "packet-filter/v1", weak)
	if !strings.Contains(out, "ACCEPTED") {
		t.Fatalf("negotiate:\n%s", out)
	}

	greedy := filepath.Join(dir, "greedy.txt")
	if err := os.WriteFile(greedy, []byte("name: greedy/v1\npre: wr(r1)\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	gotOut, err := run(t, "pccpolicy", "negotiate", "-base", "packet-filter/v1", greedy)
	if err == nil || !strings.Contains(gotOut, "REJECTED") {
		t.Fatalf("greedy negotiation: err=%v out:\n%s", err, gotOut)
	}
}

func TestCLITracegenAndReplay(t *testing.T) {
	dir := t.TempDir()
	pcap := filepath.Join(dir, "t.pcap")
	mustRun(t, "tracegen", "-n", "300", "-o", pcap)
	bin := filepath.Join(dir, "f1.pcc")
	mustRun(t, "pccasm", "-builtin", "filter1", "-o", bin)
	out := mustRun(t, "pccload", "-run", "-pcap", pcap, bin)
	if !strings.Contains(out, "ran 300 packets") {
		t.Fatalf("replay output:\n%s", out)
	}
}

func TestCLIDumpModes(t *testing.T) {
	dir := t.TempDir()
	bin := filepath.Join(dir, "ra.pcc")
	out := mustRun(t, "pccasm", "-builtin", "resource-access", "-dump-vc", "-dump-proof", "-o", bin)
	for _, frag := range []string{"verification conditions", "obligations", "imp_i", "and_i"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("dump output missing %q:\n%s", frag, out)
		}
	}
}

func TestCLIPaperbenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("paperbench is slow")
	}
	out := mustRun(t, "paperbench", "-fig7", "-table1")
	for _, frag := range []string{"Figure 7", "Table 1", "Filter 4"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("paperbench output missing %q:\n%s", frag, out)
		}
	}
}

func TestCLIAxiomPolicyFile(t *testing.T) {
	dir := t.TempDir()
	polFile := filepath.Join(dir, "bor.pol")
	err := os.WriteFile(polFile, []byte(`
name:       packet-filter-bor/v1
pre:        64 <= r2 /\ (ALL i. (i < r2 /\ (i & 7) = 0) => rd(r1 + i))
post:       true
axiom:      bor_align($a, $b, $m) : ($a & $m) = 0 ; ($b & $m) = 0 ;
            ($m & ($m + 1)) = 0 |- (($a | $b) & $m) = 0
`), 0o644)
	if err != nil {
		t.Fatal(err)
	}
	srcFile := filepath.Join(dir, "or.s")
	err = os.WriteFile(srcFile, []byte(`
        CLR    r0
        LDQ    r4, 0(r1)
        AND    r4, 32, r4
        BIS    r4, 8, r4
        CMPULT r4, r2, r5
        BEQ    r5, out
        ADDQ   r1, r4, r6
        LDQ    r0, 0(r6)
out:    RET
`), 0o644)
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(dir, "or.pcc")
	mustRun(t, "pccasm", "-policy-file", polFile, "-o", bin, srcFile)
	mustRun(t, "pccload", "-policy-file", polFile, bin)

	// Without the axiom-bearing policy file, the loader refuses the
	// rule set even under the same policy name.
	plainFile := filepath.Join(dir, "plain.pol")
	err = os.WriteFile(plainFile, []byte(`
name:       packet-filter-bor/v1
pre:        64 <= r2 /\ (ALL i. (i < r2 /\ (i & 7) = 0) => rd(r1 + i))
post:       true
`), 0o644)
	if err != nil {
		t.Fatal(err)
	}
	out, err := run(t, "pccload", "-policy-file", plainFile, bin)
	if err == nil || !strings.Contains(out, "rule set") {
		t.Fatalf("rule-set mismatch not reported:\n%s", out)
	}
}

func TestCLISFIHybrid(t *testing.T) {
	dir := t.TempDir()
	bin := filepath.Join(dir, "f1sfi.pcc")
	out := mustRun(t, "pccasm", "-sfi", "-builtin", "filter1", "-o", bin)
	if !strings.Contains(out, "sfi-segment/v1") {
		t.Fatalf("sfi mode did not switch policy:\n%s", out)
	}
	mustRun(t, "pccload", "-policy", "sfi-segment/v1", "-run", "-packets", "500", bin)
	// The rewritten binary does not validate under the plain policy.
	if _, err := run(t, "pccload", bin); err == nil {
		t.Fatal("SFI binary accepted under packet-filter policy")
	}
}
