// Live observability surface: `pccmon -serve ADDR` boots one kernel
// per tenant (-tenants a,b,…; default a single tenant "default") with
// telemetry, audit logging, and cycle profiling all attached, keeps a
// synthetic packet stream flowing through each tenant's installed
// filters, and serves the monitoring endpoints over HTTP:
//
//	/healthz               liveness: 200 once filters are installed
//	/metrics               Prometheus text exposition (telemetry recorder)
//	/debug/vars            JSON snapshot: kernel stats, traffic, telemetry
//	/debug/flightrecorder  JSON ring of the last dispatch anomalies and
//	                       config changes, oldest first
//	/debug/timeline        correlated event timeline: spans, audit
//	                       records, and flight events joined on the
//	                       shared EventID (?id=&owner=&stage=&kind=&since=)
//	/debug/pprof/*         the host Go runtime's own profiles
//	/debug/pprof/filters   pprof-compatible *simulated* profile: cycles
//	                       per Alpha instruction across installed filters
//	/profile/              index of profiled filters
//	/profile/{filter}      annotated disassembly with cycle attribution
//	/tenants               JSON index of the hosted tenants
//	/t/{name}/…            any of the per-tenant endpoints above, routed
//	                       to that tenant's kernel, recorder, and flight
//	                       recorder (e.g. /t/alpha/metrics)
//
// The bare paths serve the default tenant (the first -tenants name),
// so single-tenant deployments and their dashboards keep working
// unchanged. Tenant isolation is the kernel registry's: each tenant
// has its own filter table, sharded statistics, telemetry recorder,
// and flight recorder, so one tenant's churn never moves another's
// metrics (see docs/OBSERVABILITY.md).
//
// The process runs until SIGINT/SIGTERM and then shuts the listener
// down gracefully. Every install/reject decision made while serving
// is written to the structured audit log (JSON lines on stderr, or
// -audit-out FILE), tagged with its tenant.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	pcc "repro"
	"repro/internal/filters"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/pktgen"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// monitor is one tenant's serving state: its kernel (with recorder
// and flight recorder attached via the registry) plus the
// synthetic-traffic counters the endpoints report.
type monitor struct {
	name  string
	k     *kernel.Kernel
	rec   *telemetry.Recorder
	fr    *telemetry.FlightRecorder
	ar    *telemetry.AuditRing
	start time.Time

	packets atomic.Int64 // synthetic packets delivered
	bytes   atomic.Int64
	ready   atomic.Bool // filters installed; /healthz gates on this
}

// server hosts the tenant set: the kernel registry that owns the
// isolated kernels, and one monitor per tenant in -tenants order (the
// first is the default the bare legacy paths serve).
type server struct {
	reg *kernel.Registry
	ts  []*monitor
}

func (s *server) def() *monitor { return s.ts[0] }

func (s *server) tenant(name string) (*monitor, bool) {
	for _, m := range s.ts {
		if m.name == name {
			return m, true
		}
	}
	return nil, false
}

// bootServer builds one fully observed kernel per tenant name (default
// a single "default" tenant) through the kernel registry and installs
// the paper filters plus any user-supplied binaries into each.
func bootServer(auditLog *slog.Logger, storeBase string, budget int64, extra map[string]string, tenants []string) (*server, error) {
	if len(tenants) == 0 {
		tenants = []string{"default"}
	}
	s := &server{reg: kernel.NewRegistry()}
	for _, name := range tenants {
		m, err := bootTenant(s.reg, name, auditLog, storeBase, budget, extra)
		if err != nil {
			return nil, fmt.Errorf("tenant %q: %w", name, err)
		}
		s.ts = append(s.ts, m)
	}
	return s, nil
}

// bootTenant creates one registry tenant and brings its kernel to the
// serving posture: audit logger tagged with the tenant, compiled
// backend, cycle profiling, quarantine, optional cycle budget, and
// the filter set installed.
func bootTenant(reg *kernel.Registry, name string, auditLog *slog.Logger, storeBase string, budget int64, extra map[string]string) (*monitor, error) {
	tn, err := reg.Create(name)
	if err != nil {
		return nil, err
	}
	m := &monitor{
		name:  name,
		k:     tn.Kernel,
		rec:   tn.Rec,
		fr:    tn.Flight,
		ar:    tn.Audit,
		start: time.Now(),
	}
	// Tee audit records through the tenant's ring on their way to the
	// durable sink, so /debug/timeline can join recent install decisions
	// against spans and flight events without re-parsing log files.
	m.k.SetAuditLog(slog.New(m.ar.Handler(auditLog.Handler())).With("tenant", name))
	// Serve on the compiled backend with profiling attached: profiled
	// threaded code is the always-on production posture this monitor
	// demonstrates (profiling no longer reroutes dispatch to the
	// interpreter).
	if err := m.k.SetBackend(kernel.BackendCompiled); err != nil {
		return nil, err
	}
	m.k.SetProfiling(true)
	// A served kernel faces untrusted producers: repeated rejections
	// embargo the offending owner with exponential backoff. The embargo
	// set is visible in /debug/vars ("quarantined") and as the
	// pcc_quarantined_owners gauge in /metrics.
	m.k.SetQuarantine(kernel.QuarantineConfig{Threshold: 3, Base: time.Second, Max: 5 * time.Minute})
	if budget > 0 {
		m.k.SetCycleBudget(kernel.CycleBudget(budget))
	}

	// Durability first: recover whatever a previous process journaled
	// (every record re-proved through the full validation pipeline —
	// the disk is just another untrusted producer), then leave the
	// store attached so every install below, and every install the
	// /install endpoint accepts later, acks only after its journal
	// record is on disk.
	if storeBase != "" {
		rep, err := tn.AttachStore(context.Background(),
			filepath.Join(storeBase, name), store.Options{CompactEvery: 512})
		if err != nil {
			return nil, fmt.Errorf("attach store: %w", err)
		}
		log.Printf("tenant %s: recovered %d filter(s) from %s in %s (%d skipped, %d stale, torn tail: %v)",
			name, rep.Restored, tn.Store.Dir(), rep.Duration.Round(time.Millisecond),
			len(rep.Skipped), rep.Stale, rep.TornTail)
	}

	// The default filter set tops up what recovery restored: an owner
	// already recovered keeps its journaled binary (the journal, not
	// this process's bootstrap, is the source of truth).
	present := map[string]bool{}
	for _, o := range m.k.Owners() {
		present[o] = true
	}
	var reqs []kernel.InstallRequest
	for _, f := range filters.All {
		if present[f.String()] {
			continue
		}
		cert, err := pcc.Certify(filters.Source(f), m.k.FilterPolicy(), nil)
		if err != nil {
			return nil, err
		}
		reqs = append(reqs, kernel.InstallRequest{Owner: f.String(), Binary: cert.Binary})
	}
	for name, file := range extra {
		if present[name] {
			continue
		}
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		reqs = append(reqs, kernel.InstallRequest{Owner: name, Binary: data})
	}
	for i, err := range m.k.InstallFilterBatch(reqs) {
		if err != nil {
			return nil, fmt.Errorf("install %q: %w", reqs[i].Owner, err)
		}
	}
	m.ready.Store(true)
	return m, nil
}

// pump delivers an endless synthetic trace through the kernel at
// roughly pps packets/second until ctx is cancelled, so the live
// endpoints always have fresh traffic behind them. Each tick goes
// through the vectorized batch path, the one production dispatch uses
// — and the one that feeds the per-filter latency histograms.
func (m *monitor) pump(ctx context.Context, seed uint64, pps int) {
	const tick = 20 * time.Millisecond
	batch := pps / int(time.Second/tick)
	if batch < 1 {
		batch = 1
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	raw := make([][]byte, 0, batch)
	for gen := 0; ; gen++ {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		pkts := pktgen.Generate(batch, pktgen.Config{Seed: seed + uint64(gen)})
		raw = raw[:0]
		var bytes int64
		for _, p := range pkts {
			raw = append(raw, p.Data)
			bytes += int64(p.Len())
		}
		if _, err := m.k.DeliverPackets(raw); err != nil {
			// Validated filters cannot fault; if one does the
			// monitor is broken and should say so loudly.
			log.Printf("deliver: %v", err)
			return
		}
		m.packets.Add(int64(len(raw)))
		m.bytes.Add(bytes)
	}
}

// pump drives every tenant's synthetic stream concurrently — one
// pump goroutine per tenant, seeds offset so the tenants see
// different traffic — and returns when ctx is cancelled.
func (s *server) pump(ctx context.Context, seed uint64, pps int) {
	var wg sync.WaitGroup
	for i, m := range s.ts {
		wg.Add(1)
		go func(i int, m *monitor) {
			defer wg.Done()
			m.pump(ctx, seed+uint64(i)*1009, pps)
		}(i, m)
	}
	wg.Wait()
}

// mux wires the endpoints. Split out from serve() so tests can mount
// it on an httptest server. The bare paths serve the default tenant;
// /t/{name}/… routes the same surface per tenant; /tenants indexes
// them.
func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	d := s.def()
	mux.HandleFunc("/healthz", d.handleHealthz)
	mux.HandleFunc("/install", d.handleInstall)
	mux.HandleFunc("/metrics", d.handleMetrics)
	mux.HandleFunc("/debug/vars", d.handleVars)
	mux.HandleFunc("/debug/flightrecorder", d.handleFlightRecorder)
	mux.HandleFunc("/debug/timeline", d.handleTimeline)
	mux.HandleFunc("/profile/", d.handleProfile)
	mux.HandleFunc("/tenants", s.handleTenants)
	mux.HandleFunc("/t/", s.handleTenantRoute)
	// Host-process profiles from the Go runtime, plus the simulated
	// filter profile alongside them (the monitor observes two machines:
	// the host Go process and the modeled DEC 21064).
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/pprof/filters", d.handleFilterProfile)
	return mux
}

// handleTenants serves the tenant index: every hosted tenant with its
// routing prefix and headline counters, in serving order.
func (s *server) handleTenants(w http.ResponseWriter, _ *http.Request) {
	type row struct {
		Name    string `json:"name"`
		Prefix  string `json:"prefix"`
		Filters int    `json:"filters"`
		Packets int64  `json:"traffic_packets"`
		Ready   bool   `json:"ready"`
	}
	rows := make([]row, 0, len(s.ts))
	for _, m := range s.ts {
		rows = append(rows, row{
			Name:    m.name,
			Prefix:  "/t/" + m.name + "/",
			Filters: len(m.k.Owners()),
			Packets: m.packets.Load(),
			Ready:   m.ready.Load(),
		})
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(map[string]any{"default": s.def().name, "tenants": rows}); err != nil {
		log.Printf("tenants: %v", err)
	}
}

// handleTenantRoute dispatches /t/{name}/{endpoint} to that tenant's
// handlers — the same surface the bare paths expose for the default
// tenant.
func (s *server) handleTenantRoute(w http.ResponseWriter, r *http.Request) {
	name, sub, _ := strings.Cut(strings.TrimPrefix(r.URL.Path, "/t/"), "/")
	m, ok := s.tenant(name)
	if !ok {
		http.Error(w, fmt.Sprintf("no tenant %q (see /tenants)", name), http.StatusNotFound)
		return
	}
	switch {
	case sub == "healthz":
		m.handleHealthz(w, r)
	case sub == "install":
		m.handleInstall(w, r)
	case sub == "metrics":
		m.handleMetrics(w, r)
	case sub == "debug/vars":
		m.handleVars(w, r)
	case sub == "debug/flightrecorder":
		m.handleFlightRecorder(w, r)
	case sub == "debug/timeline":
		m.handleTimeline(w, r)
	case sub == "debug/pprof/filters":
		m.handleFilterProfile(w, r)
	case sub == "profile" || strings.HasPrefix(sub, "profile/"):
		m.profilePage(w, strings.TrimPrefix(strings.TrimPrefix(sub, "profile"), "/"))
	default:
		http.Error(w, fmt.Sprintf("no endpoint %q for tenant %q", sub, name), http.StatusNotFound)
	}
}

func (m *monitor) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if !m.ready.Load() {
		http.Error(w, "filters not installed", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "ok: %d filters, %d packets delivered, up %s\n",
		len(m.k.Owners()), m.packets.Load(), time.Since(m.start).Round(time.Second))
}

// handleInstall accepts a PCC binary over POST (?owner=NAME, body =
// the binary) and submits it to the tenant's kernel — the full
// validation pipeline, quarantine posture, and, when a store is
// attached, the write-ahead journal. A 200 response therefore means
// the install is durable: the handler does not answer until the
// journal append has fsynced. Rejections come back 422 with the
// kernel's reason; the binary is never partially installed.
func (m *monitor) handleInstall(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a PCC binary (?owner=NAME)", http.StatusMethodNotAllowed)
		return
	}
	owner := r.URL.Query().Get("owner")
	if owner == "" {
		http.Error(w, "missing ?owner=NAME", http.StatusBadRequest)
		return
	}
	binary, err := io.ReadAll(io.LimitReader(r.Body, 4<<20))
	if err != nil {
		http.Error(w, fmt.Sprintf("read body: %v", err), http.StatusBadRequest)
		return
	}
	if len(binary) == 0 {
		http.Error(w, "empty binary", http.StatusBadRequest)
		return
	}
	if err := m.k.InstallFilterCtx(r.Context(), owner, binary); err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	json.NewEncoder(w).Encode(map[string]any{
		"installed": owner,
		"filters":   len(m.k.Owners()),
		"durable":   m.k.Store() != nil,
	})
}

func (m *monitor) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := m.rec.WritePrometheus(w); err != nil {
		log.Printf("metrics: %v", err)
	}
}

// handleVars serves the expvar-style JSON snapshot: kernel stats, the
// synthetic traffic counters, and the telemetry snapshot in one
// document.
func (m *monitor) handleVars(w http.ResponseWriter, _ *http.Request) {
	st := m.k.Stats()
	doc := map[string]any{
		"tenant":           m.name,
		"uptime_seconds":   time.Since(m.start).Seconds(),
		"kernel":           st,
		"owners":           m.k.Owners(),
		"accepts":          m.k.Accepts(),
		"traffic_packets":  m.packets.Load(),
		"traffic_bytes":    m.bytes.Load(),
		"quarantined":      m.k.Quarantined(),
		"extension_micros": machine.Micros(st.ExtensionCycles),
		"telemetry":        m.rec.Snapshot(false),
		"flight_recorder": map[string]int64{
			"appended": m.fr.Appended(),
			"dropped":  m.fr.Dropped(),
		},
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		log.Printf("vars: %v", err)
	}
}

// handleProfile serves annotated cycle listings: /profile/ indexes
// the profiled filters, /profile/{name} renders one filter's
// disassembly with per-PC and per-block cycle attribution.
func (m *monitor) handleProfile(w http.ResponseWriter, r *http.Request) {
	m.profilePage(w, strings.TrimPrefix(r.URL.Path, "/profile/"))
}

// profilePage renders the profile index ("" name) or one filter's
// annotated listing; shared between the bare and /t/{name}/ routes.
func (m *monitor) profilePage(w http.ResponseWriter, name string) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if name == "" {
		snaps := m.k.FilterProfiles()
		fmt.Fprintf(w, "%d profiled filters (cycle totals are lifetime sums):\n", len(snaps))
		sort.Slice(snaps, func(i, j int) bool {
			return snaps[i].TotalCycles() > snaps[j].TotalCycles()
		})
		for _, s := range snaps {
			fmt.Fprintf(w, "  %-14s %12d cycles  %8d runs   /profile/%s\n",
				s.Owner, s.TotalCycles(), s.Profile.Runs, s.Owner)
		}
		return
	}
	snap, ok := m.k.FilterProfile(name)
	if !ok {
		http.Error(w, fmt.Sprintf("no profiled filter %q", name), http.StatusNotFound)
		return
	}
	io.WriteString(w, snap.AnnotatedListing())
}

// handleFlightRecorder serves the dispatch flight recorder's ring as
// one JSON document: capacity, appended/dropped accounting, and the
// retained anomaly events oldest first.
func (m *monitor) handleFlightRecorder(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if err := m.fr.WriteJSON(w); err != nil {
		log.Printf("flight recorder: %v", err)
	}
}

// handleTimeline serves the correlated event timeline: spans from the
// telemetry trace ring, audit records from the tenant's audit ring, and
// flight events from the flight recorder, joined and filtered by the
// query parameters:
//
//	id=N        only records carrying correlation EventID N
//	owner=S     only records for owner/detail S
//	stage=S     only spans of pipeline stage S
//	kind=S      only audit records / flight events of kind S
//	since=DUR   only records newer than now-DUR (Go duration, e.g. 30s)
//
// With id= the response is the full causal story of one kernel
// operation across all three rings.
func (m *monitor) handleTimeline(w http.ResponseWriter, r *http.Request) {
	q := telemetry.TimelineQuery{
		Owner: r.URL.Query().Get("owner"),
		Stage: r.URL.Query().Get("stage"),
		Kind:  r.URL.Query().Get("kind"),
	}
	if ids := r.URL.Query().Get("id"); ids != "" {
		id, err := strconv.ParseUint(ids, 10, 64)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad id %q: %v", ids, err), http.StatusBadRequest)
			return
		}
		q.Event = id
	}
	if ss := r.URL.Query().Get("since"); ss != "" {
		d, err := time.ParseDuration(ss)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad since %q: %v (want a Go duration like 30s)", ss, err), http.StatusBadRequest)
			return
		}
		q.SinceUnixNanos = time.Now().Add(-d).UnixNano()
	}
	tl := telemetry.BuildTimeline(m.rec, m.ar, m.fr, q)
	tl.Tenant = m.name
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if err := tl.WriteJSON(w); err != nil {
		log.Printf("timeline: %v", err)
	}
}

// handleFilterProfile serves the simulated-machine pprof profile:
// cycles and visits per Alpha instruction, readable by `go tool
// pprof http://host/debug/pprof/filters`.
func (m *monitor) handleFilterProfile(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", `attachment; filename="filters.pb.gz"`)
	if err := m.k.WriteFilterProfile(w); err != nil {
		log.Printf("filter profile: %v", err)
	}
}

// runServe is the -serve entry point: boot every tenant, pump traffic
// through each, serve until SIGINT/SIGTERM, then drain the listener
// gracefully.
func runServe(addr string, auditOut string, storeBase string, budget int64, seed uint64, pps int, extra map[string]string, tenants []string) error {
	auditW := io.Writer(os.Stderr)
	if auditOut != "" {
		f, err := os.Create(auditOut)
		if err != nil {
			return err
		}
		defer f.Close()
		auditW = f
	}
	s, err := bootServer(slog.New(slog.NewJSONHandler(auditW, nil)), storeBase, budget, extra, tenants)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	go s.pump(ctx, seed, pps)

	srv := &http.Server{Addr: addr, Handler: s.mux()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("serving on %s (%d tenant(s): %s; %d filters each, ~%d pps synthetic traffic per tenant)",
		addr, len(s.ts), strings.Join(s.reg.Names(), ", "), len(s.def().k.Owners()), pps)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("signal received; draining")
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// Shutdown ordering is the durability contract: Shutdown returns
	// only after every in-flight handler — including /install calls
	// whose journal appends are mid-fsync — has finished, and only then
	// do the stores close. An install the client saw acked is on disk;
	// an install cut off by the drain was never acked.
	if err := srv.Shutdown(shutCtx); err != nil {
		return err
	}
	if err := s.reg.CloseStores(); err != nil {
		return fmt.Errorf("close stores: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
