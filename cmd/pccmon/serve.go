// Live observability surface: `pccmon -serve ADDR` boots the kernel
// with telemetry, audit logging, and cycle profiling all attached,
// keeps a synthetic packet stream flowing through the installed
// filters, and serves the monitoring endpoints over HTTP:
//
//	/healthz               liveness: 200 once filters are installed
//	/metrics               Prometheus text exposition (telemetry recorder)
//	/debug/vars            JSON snapshot: kernel stats, traffic, telemetry
//	/debug/flightrecorder  JSON ring of the last dispatch anomalies and
//	                       config changes, oldest first
//	/debug/pprof/*         the host Go runtime's own profiles
//	/debug/pprof/filters   pprof-compatible *simulated* profile: cycles
//	                       per Alpha instruction across installed filters
//	/profile/              index of profiled filters
//	/profile/{filter}      annotated disassembly with cycle attribution
//
// The process runs until SIGINT/SIGTERM and then shuts the listener
// down gracefully. Every install/reject decision made while serving
// is written to the structured audit log (JSON lines on stderr, or
// -audit-out FILE).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	pcc "repro"
	"repro/internal/filters"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/pktgen"
	"repro/internal/telemetry"
)

// monitor bundles the served kernel with its recorder and the
// synthetic-traffic counters the endpoints report.
type monitor struct {
	k     *kernel.Kernel
	rec   *telemetry.Recorder
	fr    *telemetry.FlightRecorder
	start time.Time

	packets atomic.Int64 // synthetic packets delivered
	bytes   atomic.Int64
	ready   atomic.Bool // filters installed; /healthz gates on this
}

// bootMonitor builds a kernel with the full observability stack
// attached (telemetry recorder, audit logger, flight recorder, cycle
// profiler, compiled backend) and installs the paper filters plus any
// user-supplied binaries.
func bootMonitor(auditLog *slog.Logger, budget int64, extra map[string]string) (*monitor, error) {
	m := &monitor{
		k:     kernel.New(),
		rec:   telemetry.New(),
		fr:    telemetry.NewFlightRecorder(0),
		start: time.Now(),
	}
	m.k.SetRecorder(m.rec)
	m.k.SetAuditLog(auditLog)
	// The flight recorder attaches before the posture changes below so
	// its timeline starts with the boot configuration.
	m.k.SetFlightRecorder(m.fr)
	// Serve on the compiled backend with profiling attached: profiled
	// threaded code is the always-on production posture this monitor
	// demonstrates (profiling no longer reroutes dispatch to the
	// interpreter).
	if err := m.k.SetBackend(kernel.BackendCompiled); err != nil {
		return nil, err
	}
	m.k.SetProfiling(true)
	// A served kernel faces untrusted producers: repeated rejections
	// embargo the offending owner with exponential backoff. The embargo
	// set is visible in /debug/vars ("quarantined") and as the
	// pcc_quarantined_owners gauge in /metrics.
	m.k.SetQuarantine(kernel.QuarantineConfig{Threshold: 3, Base: time.Second, Max: 5 * time.Minute})
	if budget > 0 {
		m.k.SetCycleBudget(kernel.CycleBudget(budget))
	}

	var reqs []kernel.InstallRequest
	for _, f := range filters.All {
		cert, err := pcc.Certify(filters.Source(f), m.k.FilterPolicy(), nil)
		if err != nil {
			return nil, err
		}
		reqs = append(reqs, kernel.InstallRequest{Owner: f.String(), Binary: cert.Binary})
	}
	for name, file := range extra {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		reqs = append(reqs, kernel.InstallRequest{Owner: name, Binary: data})
	}
	for i, err := range m.k.InstallFilterBatch(reqs) {
		if err != nil {
			return nil, fmt.Errorf("install %q: %w", reqs[i].Owner, err)
		}
	}
	m.ready.Store(true)
	return m, nil
}

// pump delivers an endless synthetic trace through the kernel at
// roughly pps packets/second until ctx is cancelled, so the live
// endpoints always have fresh traffic behind them. Each tick goes
// through the vectorized batch path, the one production dispatch uses
// — and the one that feeds the per-filter latency histograms.
func (m *monitor) pump(ctx context.Context, seed uint64, pps int) {
	const tick = 20 * time.Millisecond
	batch := pps / int(time.Second/tick)
	if batch < 1 {
		batch = 1
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	raw := make([][]byte, 0, batch)
	for gen := 0; ; gen++ {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		pkts := pktgen.Generate(batch, pktgen.Config{Seed: seed + uint64(gen)})
		raw = raw[:0]
		var bytes int64
		for _, p := range pkts {
			raw = append(raw, p.Data)
			bytes += int64(p.Len())
		}
		if _, err := m.k.DeliverPackets(raw); err != nil {
			// Validated filters cannot fault; if one does the
			// monitor is broken and should say so loudly.
			log.Printf("deliver: %v", err)
			return
		}
		m.packets.Add(int64(len(raw)))
		m.bytes.Add(bytes)
	}
}

// mux wires the endpoints. Split out from serve() so tests can mount
// it on an httptest server.
func (m *monitor) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", m.handleHealthz)
	mux.HandleFunc("/metrics", m.handleMetrics)
	mux.HandleFunc("/debug/vars", m.handleVars)
	mux.HandleFunc("/debug/flightrecorder", m.handleFlightRecorder)
	mux.HandleFunc("/profile/", m.handleProfile)
	// Host-process profiles from the Go runtime, plus the simulated
	// filter profile alongside them (the monitor observes two machines:
	// the host Go process and the modeled DEC 21064).
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/pprof/filters", m.handleFilterProfile)
	return mux
}

func (m *monitor) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if !m.ready.Load() {
		http.Error(w, "filters not installed", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "ok: %d filters, %d packets delivered, up %s\n",
		len(m.k.Owners()), m.packets.Load(), time.Since(m.start).Round(time.Second))
}

func (m *monitor) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := m.rec.WritePrometheus(w); err != nil {
		log.Printf("metrics: %v", err)
	}
}

// handleVars serves the expvar-style JSON snapshot: kernel stats, the
// synthetic traffic counters, and the telemetry snapshot in one
// document.
func (m *monitor) handleVars(w http.ResponseWriter, _ *http.Request) {
	st := m.k.Stats()
	doc := map[string]any{
		"uptime_seconds":   time.Since(m.start).Seconds(),
		"kernel":           st,
		"owners":           m.k.Owners(),
		"accepts":          m.k.Accepts(),
		"traffic_packets":  m.packets.Load(),
		"traffic_bytes":    m.bytes.Load(),
		"quarantined":      m.k.Quarantined(),
		"extension_micros": machine.Micros(st.ExtensionCycles),
		"telemetry":        m.rec.Snapshot(false),
		"flight_recorder": map[string]int64{
			"appended": m.fr.Appended(),
			"dropped":  m.fr.Dropped(),
		},
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		log.Printf("vars: %v", err)
	}
}

// handleProfile serves annotated cycle listings: /profile/ indexes
// the profiled filters, /profile/{name} renders one filter's
// disassembly with per-PC and per-block cycle attribution.
func (m *monitor) handleProfile(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/profile/")
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if name == "" {
		snaps := m.k.FilterProfiles()
		fmt.Fprintf(w, "%d profiled filters (cycle totals are lifetime sums):\n", len(snaps))
		sort.Slice(snaps, func(i, j int) bool {
			return snaps[i].TotalCycles() > snaps[j].TotalCycles()
		})
		for _, s := range snaps {
			fmt.Fprintf(w, "  %-14s %12d cycles  %8d runs   /profile/%s\n",
				s.Owner, s.TotalCycles(), s.Profile.Runs, s.Owner)
		}
		return
	}
	snap, ok := m.k.FilterProfile(name)
	if !ok {
		http.Error(w, fmt.Sprintf("no profiled filter %q", name), http.StatusNotFound)
		return
	}
	io.WriteString(w, snap.AnnotatedListing())
}

// handleFlightRecorder serves the dispatch flight recorder's ring as
// one JSON document: capacity, appended/dropped accounting, and the
// retained anomaly events oldest first.
func (m *monitor) handleFlightRecorder(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if err := m.fr.WriteJSON(w); err != nil {
		log.Printf("flight recorder: %v", err)
	}
}

// handleFilterProfile serves the simulated-machine pprof profile:
// cycles and visits per Alpha instruction, readable by `go tool
// pprof http://host/debug/pprof/filters`.
func (m *monitor) handleFilterProfile(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", `attachment; filename="filters.pb.gz"`)
	if err := m.k.WriteFilterProfile(w); err != nil {
		log.Printf("filter profile: %v", err)
	}
}

// runServe is the -serve entry point: boot, pump traffic, serve until
// SIGINT/SIGTERM, then drain the listener gracefully.
func runServe(addr string, auditOut string, budget int64, seed uint64, pps int, extra map[string]string) error {
	auditW := io.Writer(os.Stderr)
	if auditOut != "" {
		f, err := os.Create(auditOut)
		if err != nil {
			return err
		}
		defer f.Close()
		auditW = f
	}
	m, err := bootMonitor(slog.New(slog.NewJSONHandler(auditW, nil)), budget, extra)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	go m.pump(ctx, seed, pps)

	srv := &http.Server{Addr: addr, Handler: m.mux()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("serving on %s (%d filters, ~%d pps synthetic traffic)",
		addr, len(m.k.Owners()), pps)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("signal received; draining")
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
