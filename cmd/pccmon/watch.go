// Live terminal view: `pccmon -watch URL` polls a serving monitor's
// /debug/vars endpoint (bare or per-tenant, e.g.
// http://host:6060/t/alpha/debug/vars) and renders a compact refresh
// of the sliding-window rates the windowed recorder computes
// server-side: installs/s, packets/s, reject reasons, and windowed
// p99 dispatch latency per filter owner. No state accumulates in the
// watcher — every line is the server's own window, so a freshly
// started watch shows the same numbers a long-running one does.
package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/kernel"
	"repro/internal/telemetry"
)

// varsDoc is the subset of /debug/vars the watcher renders.
type varsDoc struct {
	Tenant         string             `json:"tenant"`
	UptimeSeconds  float64            `json:"uptime_seconds"`
	TrafficPackets int64              `json:"traffic_packets"`
	Telemetry      telemetry.Snapshot `json:"telemetry"`
}

// fetchVars polls one /debug/vars document.
func fetchVars(url string) (*varsDoc, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	var doc varsDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, fmt.Errorf("decode %s: %w", url, err)
	}
	return &doc, nil
}

// renderWatch formats one refresh of the live view.
func renderWatch(doc *varsDoc) string {
	var b strings.Builder
	s := &doc.Telemetry
	fmt.Fprintf(&b, "tenant %s  up %s  packets %d\n",
		doc.Tenant, (time.Duration(doc.UptimeSeconds)*time.Second).Round(time.Second), doc.TrafficPackets)
	fmt.Fprintf(&b, "  installs/s %8.1f   rejects/s %8.1f   packets/s %10.1f\n",
		s.Rates[kernel.MetricInstalled], s.Rates[kernel.MetricRejected], s.Rates[kernel.MetricPackets])

	if reasons := s.LabeledRates[kernel.MetricRejects]; len(reasons) > 0 {
		keys := make([]string, 0, len(reasons))
		for k := range reasons {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString("  reject reasons (events/s):")
		for _, k := range keys {
			fmt.Fprintf(&b, "  %s=%.1f", k, reasons[k])
		}
		b.WriteString("\n")
	}

	if owners := s.LabeledHistograms[kernel.MetricFilterLatency]; len(owners) > 0 {
		keys := make([]string, 0, len(owners))
		for k := range owners {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString("  windowed dispatch p99 by owner (µs):\n")
		for _, k := range keys {
			h := owners[k]
			fmt.Fprintf(&b, "    %-14s %9.3f  (%.0f runs/s)\n", k, h.WindowP99*1e6, h.WindowRate)
		}
	}
	return b.String()
}

// runWatch polls url every interval and prints the live view; count
// bounds the refresh count (0 = forever). The URL should point at a
// /debug/vars endpoint; a bare server address gets the default
// tenant's path appended.
func runWatch(url string, interval time.Duration, count int) error {
	if !strings.Contains(url, "/debug/vars") {
		url = strings.TrimRight(url, "/") + "/debug/vars"
	}
	if !strings.HasPrefix(url, "http") {
		url = "http://" + url
	}
	for i := 0; count <= 0 || i < count; i++ {
		if i > 0 {
			time.Sleep(interval)
		}
		doc, err := fetchVars(url)
		if err != nil {
			return err
		}
		fmt.Printf("-- %s --\n%s", time.Now().Format("15:04:05"), renderWatch(doc))
	}
	return nil
}
