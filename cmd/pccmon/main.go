// Command pccmon is a network-monitoring application of the kind the
// paper's introduction motivates ("packet filters have been used
// successfully in network monitoring and diagnosis"): it boots the
// simulated extensible kernel, certifies and installs all four paper
// filters plus any user-supplied ones, runs a trace (synthetic or
// pcap) through them, and reports per-filter traffic statistics with
// the modeled per-packet cost — the whole PCC story as one tool.
//
// Usage:
//
//	pccmon [-packets N] [-pcap trace.pcap] [-filter name=file.pcc]...
//	       [-backend interp|compiled] [-flightrecorder]
//	       [-telemetry [-slowest N] [-trace-out spans.jsonl]]
//	       [-serve :6060 [-pps N] [-audit-out audit.jsonl] [-tenants a,b]
//	                     [-store DIR]]
//	       [-watch URL [-watch-interval 2s] [-watch-count N]]
//
// With -telemetry, a telemetry recorder is attached to the kernel for
// the whole run and the report ends with per-stage latency summaries,
// the slowest validations, and the Prometheus-style metrics
// exposition page (see docs/OBSERVABILITY.md).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/filters"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/pktgen"
	"repro/internal/telemetry"

	pcc "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pccmon: ")
	packets := flag.Int("packets", 50000, "synthetic trace length")
	pcapFile := flag.String("pcap", "", "replay a pcap capture instead of the generator")
	seed := flag.Uint64("seed", 1996, "synthetic trace seed")
	budget := flag.Int64("budget", 0, "per-packet worst-case cycle budget enforced at install (0 = off)")
	telem := flag.Bool("telemetry", false, "attach a telemetry recorder; dump the metrics exposition page and slowest validations")
	backendFlag := flag.String("backend", "interp", "execution backend for installed filters (interp or compiled)")
	flightRec := flag.Bool("flightrecorder", false, "attach a dispatch flight recorder; dump the anomaly ring after the run")
	slowest := flag.Int("slowest", 5, "with -telemetry, how many slowest validations to list")
	traceOut := flag.String("trace-out", "", "with -telemetry, write the span trace as JSON-lines to a file")
	serve := flag.String("serve", "", "serve the live observability endpoints on this address (e.g. :6060) instead of a one-shot report")
	pps := flag.Int("pps", 2000, "with -serve, synthetic traffic rate in packets/second")
	auditOut := flag.String("audit-out", "", "with -serve, write the JSON audit log to a file instead of stderr")
	storeDir := flag.String("store", "", "with -serve, durable filter store directory (one journal per tenant under it): installs ack only after the journal write, and boot recovers the journaled set through full re-validation")
	tenantsFlag := flag.String("tenants", "", "with -serve, comma-separated tenant names, one isolated kernel each (default a single tenant \"default\")")
	watch := flag.String("watch", "", "poll a serving monitor's /debug/vars URL and print live windowed rates (installs/s, packets/s, rejects, p99 by owner)")
	watchInterval := flag.Duration("watch-interval", 2*time.Second, "with -watch, polling interval")
	watchCount := flag.Int("watch-count", 0, "with -watch, number of refreshes before exiting (0 = forever)")
	extra := map[string]string{}
	flag.Func("filter", "additional filter as name=file.pcc (repeatable)", func(s string) error {
		name, file, ok := strings.Cut(s, "=")
		if !ok {
			return fmt.Errorf("expected name=file.pcc")
		}
		extra[name] = file
		return nil
	})
	flag.Parse()

	if *watch != "" {
		if err := runWatch(*watch, *watchInterval, *watchCount); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *serve != "" {
		var tenants []string
		for _, name := range strings.Split(*tenantsFlag, ",") {
			if name = strings.TrimSpace(name); name != "" {
				tenants = append(tenants, name)
			}
		}
		if err := runServe(*serve, *auditOut, *storeDir, *budget, *seed, *pps, extra, tenants); err != nil {
			log.Fatal(err)
		}
		return
	}

	k := kernel.New()
	var rec *telemetry.Recorder
	if *telem {
		rec = telemetry.New()
		k.SetRecorder(rec)
	}
	var fr *telemetry.FlightRecorder
	if *flightRec {
		fr = telemetry.NewFlightRecorder(0)
		k.SetFlightRecorder(fr)
	}
	be, err := kernel.ParseBackend(*backendFlag)
	if err != nil {
		log.Fatal(err)
	}
	if err := k.SetBackend(be); err != nil {
		log.Fatal(err)
	}
	if *budget > 0 {
		k.SetCycleBudget(kernel.CycleBudget(*budget))
		fmt.Printf("cycle budget: %d cycles/packet (static WCET enforced at install)\n", *budget)
	}
	// Certify the paper filters and collect user-supplied binaries,
	// then fan the whole set through the concurrent validation
	// pipeline in one batch.
	var reqs []kernel.InstallRequest
	for _, f := range filters.All {
		cert, err := pcc.Certify(filters.Source(f), k.FilterPolicy(), nil)
		if err != nil {
			log.Fatal(err)
		}
		reqs = append(reqs, kernel.InstallRequest{Owner: f.String(), Binary: cert.Binary})
	}
	for name, file := range extra {
		data, err := os.ReadFile(file)
		if err != nil {
			log.Fatal(err)
		}
		reqs = append(reqs, kernel.InstallRequest{Owner: name, Binary: data})
	}
	for i, err := range k.InstallFilterBatch(reqs) {
		if err == nil {
			continue
		}
		if _, user := extra[reqs[i].Owner]; user {
			log.Fatalf("%v (the kernel refuses unproven filters)", err)
		}
		fmt.Printf("%v\n", err)
	}
	fmt.Printf("monitoring with %d validated filters: %s\n",
		len(k.Owners()), strings.Join(k.Owners(), ", "))

	var pkts []pktgen.Packet
	if *pcapFile != "" {
		f, err := os.Open(*pcapFile)
		if err != nil {
			log.Fatal(err)
		}
		pkts, err = pktgen.ReadPcap(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	} else {
		pkts = pktgen.Generate(*packets, pktgen.Config{Seed: *seed})
	}

	var bytes int
	for _, p := range pkts {
		bytes += p.Len()
		if _, err := k.DeliverPacket(p); err != nil {
			log.Fatal(err)
		}
	}

	st := k.Stats()
	fmt.Printf("\nprocessed %d packets (%d bytes)\n", st.Packets, bytes)
	fmt.Printf("%-14s %10s %8s\n", "filter", "matches", "share")
	accepts := k.Accepts()
	names := make([]string, 0, len(accepts))
	for n := range accepts {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("%-14s %10d %7.1f%%\n", n, accepts[n],
			100*float64(accepts[n])/float64(st.Packets))
	}
	perPkt := machine.Micros(st.ExtensionCycles) / float64(st.Packets) / float64(len(k.Owners()))
	fmt.Printf("\nmodeled filtering cost: %.2f µs per packet per filter "+
		"(%.1f ms total at 175 MHz)\n", perPkt, machine.Micros(st.ExtensionCycles)/1000)
	fmt.Printf("one-time validation: %.2f ms for %d filters — no further run-time checks\n",
		st.ValidationMicros/1000, st.Validations-st.Rejections)
	fmt.Printf("validation pipeline: %d batch(es), queue wait %.0f µs; "+
		"proof cache %d hits / %d misses / %d evictions\n",
		st.BatchInstalls, st.QueueWaitMicros, st.CacheHits, st.CacheMisses, st.CacheEvictions)

	if rec != nil {
		reportTelemetry(rec, *slowest, *traceOut)
	}
	if fr != nil {
		reportFlightRecorder(fr)
	}
}

// reportFlightRecorder dumps the anomaly ring: a human-readable event
// line per retained event, oldest first, plus the ring accounting.
// With nothing abnormal in the run the timeline is just the config
// changes — which is itself the finding.
func reportFlightRecorder(fr *telemetry.FlightRecorder) {
	evs := fr.Events()
	fmt.Printf("\n== flight recorder (%d events retained, %d recorded, %d dropped) ==\n",
		len(evs), fr.Appended(), fr.Dropped())
	for _, e := range evs {
		owner := e.Owner
		if owner == "" {
			owner = "-"
		}
		fmt.Printf("%6d  %s  %-18s %-14s %s\n", e.Seq,
			time.Unix(0, e.TimeUnixNanos).Format("15:04:05.000000"),
			e.Kind, owner, e.Detail)
	}
}

// reportTelemetry dumps the telemetry surfaces: stage latency
// summaries, the top-N slowest validations from the span trace, the
// Prometheus-style exposition page, and (optionally) the raw trace as
// JSON-lines.
func reportTelemetry(rec *telemetry.Recorder, slowest int, traceOut string) {
	fmt.Printf("\n== stage latencies (p50 / p90 / p99, µs) ==\n")
	for _, stage := range telemetry.Stages {
		h := rec.StageHistogram(stage)
		if h.Count() == 0 {
			continue
		}
		fmt.Printf("%-12s %9.1f %9.1f %9.1f   (%d observations)\n", stage,
			h.Quantile(0.50)*1e6, h.Quantile(0.90)*1e6, h.Quantile(0.99)*1e6, h.Count())
	}

	type val struct {
		owner string
		dur   float64 // µs
		err   string
	}
	var vals []val
	for _, e := range rec.Trace().Events() {
		if e.Stage == telemetry.StageValidate {
			vals = append(vals, val{e.Detail, float64(e.DurNanos) / 1e3, e.Err})
		}
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i].dur > vals[j].dur })
	if len(vals) > slowest {
		vals = vals[:slowest]
	}
	fmt.Printf("\n== %d slowest validations ==\n", len(vals))
	for _, v := range vals {
		verdict := "ok"
		if v.err != "" {
			verdict = "REJECTED: " + v.err
		}
		fmt.Printf("%-14s %9.1f µs  %s\n", v.owner, v.dur, verdict)
	}

	fmt.Printf("\n== metrics exposition ==\n")
	if err := rec.WritePrometheus(os.Stdout); err != nil {
		log.Fatal(err)
	}

	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := rec.Trace().WriteJSONL(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		tr := rec.Trace()
		fmt.Printf("\nwrote %d spans to %s (%d recorded, %d dropped by the ring)\n",
			len(tr.Events()), traceOut, tr.Appended(), tr.Dropped())
	}
}
