package main

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// bootTestMonitor boots the full observability stack into an httptest
// server, with the audit log captured in a buffer.
func bootTestMonitor(t *testing.T) (*monitor, *httptest.Server, *bytes.Buffer) {
	t.Helper()
	var audit bytes.Buffer
	m, err := bootMonitor(slog.New(slog.NewJSONHandler(&audit, nil)), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(m.mux())
	t.Cleanup(srv.Close)
	return m, srv, &audit
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestServeEndpoints drives a little traffic through a served monitor
// and checks every endpoint answers with plausible content.
func TestServeEndpoints(t *testing.T) {
	m, srv, audit := bootTestMonitor(t)

	// A short bounded pump instead of the endless background one.
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	m.pump(ctx, 42, 5000)
	if m.packets.Load() == 0 {
		t.Fatal("pump delivered no packets")
	}

	code, body := get(t, srv.URL+"/healthz")
	if code != http.StatusOK || !strings.Contains(body, "ok:") {
		t.Fatalf("/healthz: %d %q", code, body)
	}

	code, body = get(t, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	for _, want := range []string{"pcc_packets_total", "pcc_install_installed_total",
		"pcc_quarantined_owners"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %s:\n%s", want, body)
		}
	}

	code, body = get(t, srv.URL+"/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars: %d", code)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if doc["traffic_packets"].(float64) <= 0 || doc["kernel"] == nil || doc["telemetry"] == nil {
		t.Fatalf("/debug/vars implausible: %v", doc)
	}
	if _, ok := doc["quarantined"]; !ok {
		t.Fatalf("/debug/vars missing quarantined set: %v", doc)
	}

	// A producer spamming garbage gets embargoed, and the embargo shows
	// up on both observability surfaces.
	for i := 0; i < 3; i++ {
		if err := m.k.InstallFilter("spammer", []byte("not a pcc binary")); err == nil {
			t.Fatal("garbage installed")
		}
	}
	if _, body = get(t, srv.URL+"/debug/vars"); !strings.Contains(body, "spammer") {
		t.Fatalf("/debug/vars does not show the quarantined owner:\n%s", body)
	}
	if _, body = get(t, srv.URL+"/metrics"); !strings.Contains(body, "pcc_quarantined_owners 1") {
		t.Fatalf("/metrics gauge did not rise:\n%s", body)
	}

	// Batch dispatch feeds the per-owner latency family.
	if _, body = get(t, srv.URL+"/metrics"); !strings.Contains(body, `pcc_filter_run_seconds_bucket{filter="Filter 1"`) {
		t.Fatalf("/metrics missing per-filter latency family:\n%s", body)
	}

	// The flight recorder saw the boot config changes and the embargo.
	code, body = get(t, srv.URL+"/debug/flightrecorder")
	if code != http.StatusOK {
		t.Fatalf("/debug/flightrecorder: %d", code)
	}
	var flight struct {
		Capacity int `json:"capacity"`
		Appended int `json:"appended"`
		Events   []struct {
			Kind  string `json:"kind"`
			Owner string `json:"owner"`
		} `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &flight); err != nil {
		t.Fatalf("/debug/flightrecorder not JSON: %v\n%s", err, body)
	}
	if flight.Capacity <= 0 || flight.Appended == 0 {
		t.Fatalf("flight recorder empty: %+v", flight)
	}
	kinds := map[string]bool{}
	for _, e := range flight.Events {
		kinds[e.Kind] = true
	}
	if !kinds["config_change"] || !kinds["quarantine"] {
		t.Fatalf("flight recorder missing boot config / quarantine events: %+v", flight.Events)
	}

	// Config changes are audited too.
	if !strings.Contains(audit.String(), `"event":"config"`) {
		t.Fatalf("boot config changes not audited:\n%s", audit.String())
	}

	code, body = get(t, srv.URL+"/profile/")
	if code != http.StatusOK || !strings.Contains(body, "/profile/Filter 1") {
		t.Fatalf("/profile/ index: %d %q", code, body)
	}
	code, body = get(t, srv.URL+"/profile/Filter 1")
	if code != http.StatusOK || !strings.Contains(body, "RET") || !strings.Contains(body, "cycles") {
		t.Fatalf("/profile/Filter 1: %d %q", code, body)
	}
	if code, _ := get(t, srv.URL+"/profile/nonesuch"); code != http.StatusNotFound {
		t.Fatalf("/profile/nonesuch: %d, want 404", code)
	}

	// The simulated-filter pprof endpoint must serve a valid gzipped
	// profile naming the filter PCs.
	resp, err := http.Get(srv.URL + "/debug/pprof/filters")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	gz, err := gzip.NewReader(resp.Body)
	if err != nil {
		t.Fatalf("/debug/pprof/filters not gzip: %v", err)
	}
	raw, err := io.ReadAll(gz)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, []byte("@pc0")) || !bytes.Contains(raw, []byte("cycles")) {
		t.Fatal("/debug/pprof/filters profile names no filter PCs")
	}

	// Host-Go pprof is mounted alongside.
	if code, _ := get(t, srv.URL+"/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/: %d", code)
	}

	// Boot-time installs were audited.
	if !strings.Contains(audit.String(), `"event":"install"`) ||
		!strings.Contains(audit.String(), `"verdict":"installed"`) {
		t.Fatalf("boot installs not audited:\n%s", audit.String())
	}
}

// TestServeHealthzGate: before installs complete /healthz must fail.
func TestServeHealthzGate(t *testing.T) {
	m, srv, _ := bootTestMonitor(t)
	m.ready.Store(false)
	if code, _ := get(t, srv.URL+"/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("unready /healthz: %d, want 503", code)
	}
	m.ready.Store(true)
	if code, _ := get(t, srv.URL+"/healthz"); code != http.StatusOK {
		t.Fatal("ready /healthz not 200")
	}
}
