package main

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"net/url"
	"path/filepath"
	"strings"
	"testing"
	"time"

	pcc "repro"
	"repro/internal/filters"
	"repro/internal/store"
)

// bootTestMonitor boots the full observability stack into an httptest
// server, with the audit log captured in a buffer. With no tenant
// names it hosts the single "default" tenant, whose monitor is
// returned (the one the bare legacy paths serve).
func bootTestMonitor(t *testing.T, tenants ...string) (*monitor, *httptest.Server, *bytes.Buffer) {
	t.Helper()
	var audit bytes.Buffer
	s, err := bootServer(slog.New(slog.NewJSONHandler(&audit, nil)), "", 0, nil, tenants)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.mux())
	t.Cleanup(srv.Close)
	return s.def(), srv, &audit
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestServeEndpoints drives a little traffic through a served monitor
// and checks every endpoint answers with plausible content.
func TestServeEndpoints(t *testing.T) {
	m, srv, audit := bootTestMonitor(t)

	// A short bounded pump instead of the endless background one.
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	m.pump(ctx, 42, 5000)
	if m.packets.Load() == 0 {
		t.Fatal("pump delivered no packets")
	}

	code, body := get(t, srv.URL+"/healthz")
	if code != http.StatusOK || !strings.Contains(body, "ok:") {
		t.Fatalf("/healthz: %d %q", code, body)
	}

	code, body = get(t, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	for _, want := range []string{"pcc_packets_total", "pcc_install_installed_total",
		"pcc_quarantined_owners"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %s:\n%s", want, body)
		}
	}

	code, body = get(t, srv.URL+"/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars: %d", code)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if doc["traffic_packets"].(float64) <= 0 || doc["kernel"] == nil || doc["telemetry"] == nil {
		t.Fatalf("/debug/vars implausible: %v", doc)
	}
	if _, ok := doc["quarantined"]; !ok {
		t.Fatalf("/debug/vars missing quarantined set: %v", doc)
	}

	// A producer spamming garbage gets embargoed, and the embargo shows
	// up on both observability surfaces.
	for i := 0; i < 3; i++ {
		if err := m.k.InstallFilter("spammer", []byte("not a pcc binary")); err == nil {
			t.Fatal("garbage installed")
		}
	}
	if _, body = get(t, srv.URL+"/debug/vars"); !strings.Contains(body, "spammer") {
		t.Fatalf("/debug/vars does not show the quarantined owner:\n%s", body)
	}
	if _, body = get(t, srv.URL+"/metrics"); !strings.Contains(body, "pcc_quarantined_owners 1") {
		t.Fatalf("/metrics gauge did not rise:\n%s", body)
	}

	// Batch dispatch feeds the per-owner latency family.
	if _, body = get(t, srv.URL+"/metrics"); !strings.Contains(body, `pcc_filter_run_seconds_bucket{filter="Filter 1"`) {
		t.Fatalf("/metrics missing per-filter latency family:\n%s", body)
	}

	// The flight recorder saw the boot config changes and the embargo.
	code, body = get(t, srv.URL+"/debug/flightrecorder")
	if code != http.StatusOK {
		t.Fatalf("/debug/flightrecorder: %d", code)
	}
	var flight struct {
		Capacity int `json:"capacity"`
		Appended int `json:"appended"`
		Events   []struct {
			Kind  string `json:"kind"`
			Owner string `json:"owner"`
		} `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &flight); err != nil {
		t.Fatalf("/debug/flightrecorder not JSON: %v\n%s", err, body)
	}
	if flight.Capacity <= 0 || flight.Appended == 0 {
		t.Fatalf("flight recorder empty: %+v", flight)
	}
	kinds := map[string]bool{}
	for _, e := range flight.Events {
		kinds[e.Kind] = true
	}
	if !kinds["config_change"] || !kinds["quarantine"] {
		t.Fatalf("flight recorder missing boot config / quarantine events: %+v", flight.Events)
	}

	// Config changes are audited too.
	if !strings.Contains(audit.String(), `"event":"config"`) {
		t.Fatalf("boot config changes not audited:\n%s", audit.String())
	}

	code, body = get(t, srv.URL+"/profile/")
	if code != http.StatusOK || !strings.Contains(body, "/profile/Filter 1") {
		t.Fatalf("/profile/ index: %d %q", code, body)
	}
	code, body = get(t, srv.URL+"/profile/Filter 1")
	if code != http.StatusOK || !strings.Contains(body, "RET") || !strings.Contains(body, "cycles") {
		t.Fatalf("/profile/Filter 1: %d %q", code, body)
	}
	if code, _ := get(t, srv.URL+"/profile/nonesuch"); code != http.StatusNotFound {
		t.Fatalf("/profile/nonesuch: %d, want 404", code)
	}

	// The simulated-filter pprof endpoint must serve a valid gzipped
	// profile naming the filter PCs.
	resp, err := http.Get(srv.URL + "/debug/pprof/filters")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	gz, err := gzip.NewReader(resp.Body)
	if err != nil {
		t.Fatalf("/debug/pprof/filters not gzip: %v", err)
	}
	raw, err := io.ReadAll(gz)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, []byte("@pc0")) || !bytes.Contains(raw, []byte("cycles")) {
		t.Fatal("/debug/pprof/filters profile names no filter PCs")
	}

	// Host-Go pprof is mounted alongside.
	if code, _ := get(t, srv.URL+"/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/: %d", code)
	}

	// Boot-time installs were audited.
	if !strings.Contains(audit.String(), `"event":"install"`) ||
		!strings.Contains(audit.String(), `"verdict":"installed"`) {
		t.Fatalf("boot installs not audited:\n%s", audit.String())
	}
}

// TestServeMultiTenant boots two tenants and checks the per-tenant
// routing and kernel isolation end to end over HTTP: traffic pumped
// into one tenant moves only that tenant's counters, each /t/{name}/
// surface reports its own kernel, and the audit stream tags every
// record with its tenant.
func TestServeMultiTenant(t *testing.T) {
	var audit bytes.Buffer
	s, err := bootServer(slog.New(slog.NewJSONHandler(&audit, nil)), "", 0, nil, []string{"alpha", "beta"})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.mux())
	t.Cleanup(srv.Close)
	alpha, ok := s.tenant("alpha")
	if !ok {
		t.Fatal("no alpha tenant")
	}
	beta, ok := s.tenant("beta")
	if !ok {
		t.Fatal("no beta tenant")
	}

	code, body := get(t, srv.URL+"/tenants")
	if code != http.StatusOK {
		t.Fatalf("/tenants: %d", code)
	}
	var index struct {
		Default string `json:"default"`
		Tenants []struct {
			Name    string `json:"name"`
			Prefix  string `json:"prefix"`
			Filters int    `json:"filters"`
			Ready   bool   `json:"ready"`
		} `json:"tenants"`
	}
	if err := json.Unmarshal([]byte(body), &index); err != nil {
		t.Fatalf("/tenants not JSON: %v\n%s", err, body)
	}
	if index.Default != "alpha" || len(index.Tenants) != 2 ||
		index.Tenants[0].Name != "alpha" || index.Tenants[1].Prefix != "/t/beta/" ||
		index.Tenants[0].Filters == 0 || !index.Tenants[1].Ready {
		t.Fatalf("/tenants implausible: %+v", index)
	}

	// Pump traffic into alpha only: isolation means beta's kernel and
	// traffic counters must not move.
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	alpha.pump(ctx, 42, 5000)
	if alpha.packets.Load() == 0 {
		t.Fatal("pump delivered no packets to alpha")
	}
	if beta.packets.Load() != 0 {
		t.Fatal("alpha's pump leaked traffic-counter increments into beta")
	}

	vars := func(tenant string) map[string]any {
		code, body := get(t, srv.URL+"/t/"+tenant+"/debug/vars")
		if code != http.StatusOK {
			t.Fatalf("/t/%s/debug/vars: %d", tenant, code)
		}
		var doc map[string]any
		if err := json.Unmarshal([]byte(body), &doc); err != nil {
			t.Fatalf("/t/%s/debug/vars not JSON: %v", tenant, err)
		}
		return doc
	}
	av, bv := vars("alpha"), vars("beta")
	if av["tenant"] != "alpha" || bv["tenant"] != "beta" {
		t.Fatalf("tenant tags wrong: %v / %v", av["tenant"], bv["tenant"])
	}
	// Exact reconciliation within one tenant: the pump counts a batch
	// only after DeliverPackets returns, so the kernel's packet total
	// must be at least the traffic counter — and beta's must be zero.
	akp := av["kernel"].(map[string]any)["Packets"].(float64)
	atp := av["traffic_packets"].(float64)
	if atp <= 0 || akp < atp {
		t.Fatalf("alpha kernel/traffic reconciliation: kernel %v < traffic %v", akp, atp)
	}
	if bkp := bv["kernel"].(map[string]any)["Packets"].(float64); bkp != 0 {
		t.Fatalf("beta kernel dispatched %v packets without traffic", bkp)
	}

	// Per-tenant metrics expositions: alpha's counter moved, beta's
	// families exist but sit at zero.
	if _, body = get(t, srv.URL+"/t/alpha/metrics"); !strings.Contains(body, "pcc_packets_total") {
		t.Fatalf("/t/alpha/metrics missing pcc_packets_total:\n%s", body)
	}
	if !strings.Contains(body, "pcc_filter_run_seconds_bucket") {
		t.Fatalf("/t/alpha/metrics missing the per-filter latency family:\n%s", body)
	}
	if _, body = get(t, srv.URL+"/t/beta/metrics"); !strings.Contains(body, "pcc_packets_total 0") {
		t.Fatalf("/t/beta/metrics packet counter moved without traffic:\n%s", body)
	}

	// The bare legacy surface is the default tenant.
	if _, body = get(t, srv.URL+"/debug/vars"); !strings.Contains(body, `"tenant": "alpha"`) {
		t.Fatalf("bare /debug/vars is not the default tenant:\n%s", body)
	}

	// Per-tenant healthz, flight recorder, and profile routing.
	if code, body = get(t, srv.URL+"/t/beta/healthz"); code != http.StatusOK || !strings.Contains(body, "ok:") {
		t.Fatalf("/t/beta/healthz: %d %q", code, body)
	}
	if code, body = get(t, srv.URL+"/t/beta/debug/flightrecorder"); code != http.StatusOK || !strings.Contains(body, "config_change") {
		t.Fatalf("/t/beta/debug/flightrecorder: %d %q", code, body)
	}
	if code, body = get(t, srv.URL+"/t/alpha/profile/"); code != http.StatusOK || !strings.Contains(body, "/profile/Filter 1") {
		t.Fatalf("/t/alpha/profile/ index: %d %q", code, body)
	}
	if code, body = get(t, srv.URL+"/t/alpha/profile/Filter 1"); code != http.StatusOK || !strings.Contains(body, "cycles") {
		t.Fatalf("/t/alpha/profile/Filter 1: %d %q", code, body)
	}

	// Unknown tenants and endpoints 404 rather than falling through to
	// another tenant's data.
	if code, _ = get(t, srv.URL+"/t/nope/metrics"); code != http.StatusNotFound {
		t.Fatalf("/t/nope/metrics: %d, want 404", code)
	}
	if code, _ = get(t, srv.URL+"/t/alpha/bogus"); code != http.StatusNotFound {
		t.Fatalf("/t/alpha/bogus: %d, want 404", code)
	}

	// Every audit record carries its tenant; both tenants booted.
	for _, want := range []string{`"tenant":"alpha"`, `"tenant":"beta"`} {
		if !strings.Contains(audit.String(), want) {
			t.Fatalf("audit log missing %s:\n%s", want, audit.String())
		}
	}
}

// TestServeHealthzGate: before installs complete /healthz must fail.
func TestServeHealthzGate(t *testing.T) {
	m, srv, _ := bootTestMonitor(t)
	m.ready.Store(false)
	if code, _ := get(t, srv.URL+"/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("unready /healthz: %d, want 503", code)
	}
	m.ready.Store(true)
	if code, _ := get(t, srv.URL+"/healthz"); code != http.StatusOK {
		t.Fatal("ready /healthz not 200")
	}
}

// postInstall drives the /install endpoint: POST the binary under the
// owner name, returning status code and body.
func postInstall(t *testing.T, srvURL, owner string, binary []byte) (int, string) {
	t.Helper()
	resp, err := http.Post(srvURL+"/install?owner="+url.QueryEscape(owner),
		"application/octet-stream", bytes.NewReader(binary))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// journalRecords reads the tenant's journal straight off disk (the
// server's store handle stays open — the journal is an append-only
// file, so a concurrent read sees exactly the committed prefix).
func journalRecords(dir string) []store.Record {
	recs, _ := store.ReplayDir(dir)
	return recs
}

// TestServeInstallDurable pins the serving durability contract end to
// end: a 200 from /install means the record is already journaled on
// disk (ack-implies-durable), a rejected binary is never journaled, the
// drain-then-close shutdown ordering can never produce an acked but
// unjournaled install, and a reboot from the same directory restores
// exactly what was acked.
func TestServeInstallDurable(t *testing.T) {
	base := t.TempDir()
	var audit bytes.Buffer
	s, err := bootServer(slog.New(slog.NewJSONHandler(&audit, nil)), base, 0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.mux())
	m := s.def()
	dir := filepath.Join(base, "default")

	// Boot journaled the default filter set.
	boot := journalRecords(dir)
	if len(boot) != len(filters.All) {
		t.Fatalf("boot journaled %d records, want %d", len(boot), len(filters.All))
	}

	cert, err := pcc.Certify(filters.Source(filters.All[0]), m.k.FilterPolicy(), nil)
	if err != nil {
		t.Fatal(err)
	}
	code, body := postInstall(t, srv.URL, "probe", cert.Binary)
	if code != http.StatusOK {
		t.Fatalf("/install: %d %q", code, body)
	}
	var ack struct {
		Installed string `json:"installed"`
		Durable   bool   `json:"durable"`
	}
	if err := json.Unmarshal([]byte(body), &ack); err != nil {
		t.Fatalf("/install ack not JSON: %v %q", err, body)
	}
	if ack.Installed != "probe" || !ack.Durable {
		t.Fatalf("/install ack implausible: %+v", ack)
	}

	// The pin: at ack time — before any shutdown — the record is
	// already fsynced into the journal, byte for byte.
	var found bool
	for _, r := range journalRecords(dir) {
		if r.Kind == store.KindInstall && r.Owner == "probe" {
			found = true
			if !bytes.Equal(r.Binary, cert.Binary) {
				t.Fatal("journaled binary differs from the acked one")
			}
		}
	}
	if !found {
		t.Fatal("acked install not in the journal — ack before durability")
	}

	// A rejected binary gets a 422 and never touches the journal.
	if code, _ := postInstall(t, srv.URL, "evil", []byte("not a pcc binary")); code != http.StatusUnprocessableEntity {
		t.Fatalf("garbage install: %d, want 422", code)
	}
	for _, r := range journalRecords(dir) {
		if r.Owner == "evil" {
			t.Fatal("rejected install was journaled")
		}
	}
	if !strings.Contains(audit.String(), `"event":"install"`) {
		t.Fatalf("installs not audited:\n%s", audit.String())
	}

	// runServe's shutdown ordering: drain the listener, then close the
	// stores. After the close an install cannot ack — the journal append
	// fails and the kernel refuses to publish, so the client can never
	// hold a 200 for a record that is not on disk.
	srv.Close()
	if err := s.reg.CloseStores(); err != nil {
		t.Fatal(err)
	}
	if err := m.k.InstallFilter("late", cert.Binary); err == nil {
		t.Fatal("install acked after the store closed")
	}
	for _, o := range m.k.Owners() {
		if o == "late" {
			t.Fatal("unjournalable install was published")
		}
	}

	// Reboot from the same directory: the acked install is restored
	// and nothing is re-journaled (the journal, not the bootstrap, is
	// the source of truth).
	before := len(journalRecords(dir))
	s2, err := bootServer(slog.New(slog.NewJSONHandler(io.Discard, nil)), base, 0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.reg.CloseStores()
	var restored bool
	for _, o := range s2.def().k.Owners() {
		if o == "probe" {
			restored = true
		}
	}
	if !restored {
		t.Fatalf("acked install lost across reboot: %v", s2.def().k.Owners())
	}
	if after := len(journalRecords(dir)); after != before {
		t.Fatalf("reboot re-journaled recovered filters: %d -> %d records", before, after)
	}
}

// TestServeTimelineRecoveryJoin boots a store-backed tenant over a
// journal with one bit-rotted proof and follows the rejection through
// the public HTTP surface: the flight recorder names the skip, and
// /debug/timeline?id= joins the same EventID across spans, audit
// records, and flight events — the full causal story of the skip.
func TestServeTimelineRecoveryJoin(t *testing.T) {
	base := t.TempDir()
	discard := slog.New(slog.NewJSONHandler(io.Discard, nil))
	s, err := bootServer(discard, base, 0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.reg.CloseStores(); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(base, "default")
	if _, err := store.TamperBinaryByte(dir, 0, 10); err != nil {
		t.Fatal(err)
	}

	var audit bytes.Buffer
	s2, err := bootServer(slog.New(slog.NewJSONHandler(&audit, nil)), base, 0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.reg.CloseStores()
	srv := httptest.NewServer(s2.mux())
	t.Cleanup(srv.Close)

	// The tampered record was refused and the refusal audited as a
	// recovery rejection.
	if got, want := len(s2.def().k.Owners()), len(filters.All); got != want {
		t.Fatalf("recovered %d filters, want %d (bit rot restored? %v)",
			got, want, s2.def().k.Owners())
	}
	if !strings.Contains(audit.String(), `"event":"recovery_skip"`) {
		t.Fatalf("recovery skip not audited:\n%s", audit.String())
	}

	// Find the skip's EventID on the flight recorder surface...
	code, body := get(t, srv.URL+"/debug/flightrecorder")
	if code != http.StatusOK {
		t.Fatalf("/debug/flightrecorder: %d", code)
	}
	var flight struct {
		Events []struct {
			Kind  string `json:"kind"`
			Event uint64 `json:"event"`
		} `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &flight); err != nil {
		t.Fatal(err)
	}
	var eid uint64
	for _, e := range flight.Events {
		if e.Kind == "recovery_skip" {
			eid = e.Event
		}
	}
	if eid == 0 {
		t.Fatalf("no recovery_skip flight event: %s", body)
	}

	// ...and pull its full causal story from /debug/timeline: the
	// validate span that killed the proof, the audit records, and the
	// flight event, all joined on the one EventID.
	code, body = get(t, srv.URL+fmt.Sprintf("/debug/timeline?id=%d", eid))
	if code != http.StatusOK {
		t.Fatalf("/debug/timeline: %d", code)
	}
	var tl struct {
		Tenant string `json:"tenant"`
		Spans  []struct {
			Stage string `json:"stage"`
			Err   string `json:"err"`
		} `json:"spans"`
		Audit []struct {
			Kind  string            `json:"kind"`
			Attrs map[string]string `json:"attrs"`
		} `json:"audit"`
		Flight []struct {
			Kind string `json:"kind"`
		} `json:"flight"`
	}
	if err := json.Unmarshal([]byte(body), &tl); err != nil {
		t.Fatalf("/debug/timeline not JSON: %v\n%s", err, body)
	}
	if tl.Tenant != "default" {
		t.Fatalf("timeline tenant %q", tl.Tenant)
	}
	var sawValidate, sawSkip, sawReason, sawFlight bool
	for _, sp := range tl.Spans {
		if sp.Stage == "validate" && sp.Err != "" {
			sawValidate = true
		}
	}
	for _, a := range tl.Audit {
		if a.Kind == "recovery_skip" {
			sawSkip = true
		}
		if a.Kind == "install" && a.Attrs["reject_reason"] == "recovery" {
			sawReason = true
		}
	}
	for _, f := range tl.Flight {
		if f.Kind == "recovery_skip" {
			sawFlight = true
		}
	}
	if !sawValidate || !sawSkip || !sawReason || !sawFlight {
		t.Fatalf("timeline join incomplete (validate span %v, recovery_skip audit %v, reject_reason %v, flight %v):\n%s",
			sawValidate, sawSkip, sawReason, sawFlight, body)
	}
}
