// Command paperbench regenerates every table and figure of Necula &
// Lee (OSDI '96): Table 1, Figures 7, 8 and 9, the §4 checksum-loop
// experiment, and the §3.1 SFI-hybrid experiment. Paper values are
// printed alongside for comparison.
//
// Usage:
//
//	paperbench [-packets N] [-fig7] [-table1] [-stages] [-certcost] [-fig8] [-fig9] [-checksum] [-sfipcc]
//	paperbench -dispatch [-backend interp|compiled]   # backend × shape throughput matrix
//	paperbench -observability                         # instrumentation overhead matrix
//	paperbench -scaling                               # multi-goroutine dispatch-scaling ladder
//	paperbench -recovery                              # verified journal replay, cold vs warm proof cache
//	paperbench -json [-packets N]   # write BENCH_<timestamp>.json
//
// With no selection flags, everything runs (the full Figure 8/9 pass
// over 200,000 packets takes a few minutes of simulation).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/alpha"
	"repro/internal/bench"
	"repro/internal/filters"
	"repro/internal/policy"
	"repro/internal/prover"
	"repro/internal/sfi"
	"repro/internal/vcgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("paperbench: ")
	packets := flag.Int("packets", bench.TraceSize, "trace length for Figures 8 and 9")
	fig7 := flag.Bool("fig7", false, "Figure 7: PCC binary layout")
	table1 := flag.Bool("table1", false, "Table 1: proof size and validation cost")
	stages := flag.Bool("stages", false, "Table 1 split: validation cost by pipeline stage")
	fig8 := flag.Bool("fig8", false, "Figure 8: per-packet run time")
	fig9 := flag.Bool("fig9", false, "Figure 9: startup-cost amortization")
	checksum := flag.Bool("checksum", false, "§4 checksum-loop experiment")
	sfipcc := flag.Bool("sfipcc", false, "§3.1 PCC-for-SFI hybrid experiment")
	ablation := flag.Bool("ablation", false, "design-choice ablations (proof encoding, cost-model sensitivity)")
	pipeline := flag.Bool("pipeline", false, "validation pipeline: proof cache + concurrent batch install")
	dispatch := flag.Bool("dispatch", false, "dispatch throughput: backend × shape matrix (host wall-clock)")
	backend := flag.String("backend", "", "restrict -dispatch to one backend: interp or compiled (default both)")
	observability := flag.Bool("observability", false, "observability overhead: dispatch throughput with profiling/observers toggled")
	certcost := flag.Bool("certcost", false, "certificate cost: proof bytes/nodes and VC nodes per filter")
	scaling := flag.Bool("scaling", false, "dispatch scaling: multi-goroutine throughput over one shared lock-free kernel")
	recovery := flag.Bool("recovery", false, "verified recovery: journal replay through the proof pipeline, cold vs warm cache")
	jsonOut := flag.Bool("json", false, "write machine-readable results to BENCH_<timestamp>.json and exit")
	flag.Parse()

	if *jsonOut {
		now := time.Now()
		rep, err := bench.BuildReport(*packets, now)
		if err != nil {
			log.Fatal(err)
		}
		name := bench.ReportFilename(now)
		f, err := os.Create(name)
		if err != nil {
			log.Fatal(err)
		}
		if err := rep.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d-packet trace)\n", name, *packets)
		return
	}

	all := !(*fig7 || *table1 || *stages || *fig8 || *fig9 || *checksum || *sfipcc || *ablation || *pipeline || *dispatch || *observability || *scaling || *certcost || *recovery)

	if all || *fig7 {
		cert, err := bench.Fig7()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(bench.FormatFig7(cert.Layout))
	}
	if all || *table1 {
		rows, err := bench.Table1()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(bench.FormatTable1(rows))
	}
	if all || *stages {
		rows, err := bench.Stages()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(bench.FormatStages(rows))
	}
	if all || *certcost {
		rows, err := bench.CertCost()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(bench.FormatCertCost(rows))
	}
	if all || *fig8 {
		rows, err := bench.Fig8(*packets)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(bench.FormatFig8(rows))
		if bad := bench.ShapeCheck(rows); len(bad) != 0 {
			fmt.Println("SHAPE WARNINGS:")
			for _, s := range bad {
				fmt.Println("  " + s)
			}
			os.Exit(1)
		}
	}
	if all || *fig9 {
		n := *packets
		if n > 20000 {
			n = 20000 // calibration trace; the curve extrapolates
		}
		res, err := bench.Fig9(n, 50000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(bench.FormatFig9(res))
	}
	if all || *checksum {
		n := *packets
		if n > 2000 {
			n = 2000
		}
		res, err := bench.Checksum(n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(bench.FormatChecksum(res))
	}
	if all || *sfipcc {
		runSFIPCC()
	}
	if all || *pipeline {
		res, err := bench.Pipeline(5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(bench.FormatPipeline(res))
	}
	if all || *dispatch {
		n := *packets
		if n > 50000 {
			n = 50000 // host wall-clock; enough packets for a stable rate
		}
		rows, err := bench.DispatchBackends(n, *backend)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(bench.FormatDispatch(rows))
	}
	if all || *observability {
		n := *packets
		if n > 50000 {
			n = 50000 // host wall-clock; enough packets for a stable rate
		}
		rows, err := bench.Observability(n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(bench.FormatObservability(rows))
	}
	if all || *scaling {
		n := *packets
		if n > 50000 {
			n = 50000 // host wall-clock; enough packets for a stable rate
		}
		rows, err := bench.DispatchScaling(n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(bench.FormatScaling(rows))
	}
	if all || *recovery {
		rows, err := bench.Recovery(bench.RecoveryRecords)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(bench.FormatRecovery(rows))
	}
	if all || *ablation {
		rows, err := bench.EncodingAblation()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(bench.FormatEncodingAblation(rows))
		n := *packets
		if n > 5000 {
			n = 5000
		}
		sens, err := bench.CostModelSensitivity(n, []int{10, 18, 25, 40})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(bench.FormatCostSensitivity(sens))
		ce, err := bench.M3CheckElimAblation(n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(bench.FormatM3CheckElim(ce))
	}
}

// runSFIPCC reproduces the §3.1 hybrid: prove the SFI-rewritten
// filters safe under the sfi-segment policy, reporting proof sizes
// next to the plain-PCC ones.
func runSFIPCC() {
	fmt.Println("PCC for SFI (§3.1): certifying the rewritten binaries")
	segPol := policy.SFISegment()
	pktPol := policy.PacketFilter()
	for _, f := range filters.All {
		plain := certSize(filters.Prog(f), pktPol)
		rw, err := sfi.Rewrite(filters.Prog(f))
		if err != nil {
			log.Fatal(err)
		}
		hybrid := certSize(rw, segPol)
		fmt.Printf("  %-10s plain-PCC proof %6d nodes | SFI-PCC proof %6d nodes\n",
			f, plain, hybrid)
	}
	fmt.Println("  (the paper: \"proof sizes and validation times are very similar" +
		" to those for plain PCC packets\")")
	fmt.Println()
}

func certSize(prog []alpha.Instr, pol *policy.Policy) int {
	res, err := vcgen.Gen(prog, pol.Pre, pol.Post, nil)
	if err != nil {
		log.Fatal(err)
	}
	proof, err := prover.Prove(res.SP)
	if err != nil {
		log.Fatal(err)
	}
	return proof.Size()
}
