// Command tracegen writes the synthetic Ethernet trace used by the
// experiments as a pcap capture, inspectable with tcpdump/wireshark
// and replayable through pccload.
//
// Usage:
//
//	tracegen -n 200000 -seed 1996 -o trace.pcap [-export DIR]
//
// With -export DIR, the trace is additionally replayed through an
// instrumented kernel and the three correlated observability streams
// (span JSONL, audit-record JSONL, flight-recorder snapshot) are
// written into DIR, joinable offline on the shared EventID.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/pktgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")
	n := flag.Int("n", 200000, "number of packets")
	seed := flag.Uint64("seed", 1996, "trace seed")
	out := flag.String("o", "trace.pcap", "output pcap file")
	ipShare := flag.Int("ip", 0, "IPv4 share in per-mille (0 = default 800)")
	export := flag.String("export", "", "also replay the trace through an instrumented kernel and write the correlated observability streams (spans.jsonl, audit.jsonl, flight.json) into this directory")
	flag.Parse()

	pkts := pktgen.Generate(*n, pktgen.Config{Seed: *seed, IPPerMille: *ipShare})
	if *export != "" {
		if err := os.MkdirAll(*export, 0o755); err != nil {
			log.Fatal(err)
		}
		if err := exportStreams(*export, pkts); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("exported correlated streams (spans.jsonl, audit.jsonl, flight.json) to %s\n", *export)
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	w := bufio.NewWriter(f)
	if err := pktgen.WritePcap(w, pkts); err != nil {
		log.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	var bytes int
	for _, p := range pkts {
		bytes += p.Len()
	}
	fmt.Printf("wrote %s: %d packets, %d bytes of frames (seed %d)\n",
		*out, len(pkts), bytes, *seed)
}
