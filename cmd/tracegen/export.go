// Correlated-stream export: `tracegen -export DIR` replays the
// generated trace through a fully observed kernel and writes the three
// observability streams side by side —
//
//	DIR/spans.jsonl   telemetry span ring (telemetry.ReadJSONL)
//	DIR/audit.jsonl   audit-record ring (telemetry.ReadAuditJSONL)
//	DIR/flight.json   flight-recorder snapshot (telemetry.FlightSnapshot)
//
// Every record carries the kernel's correlation EventID, so the files
// join offline on one key: the same joins /debug/timeline performs
// live, but against artifacts a bug report can attach.
package main

import (
	"encoding/json"
	"io"
	"log/slog"
	"os"
	"path/filepath"

	pcc "repro"
	"repro/internal/filters"
	"repro/internal/kernel"
	"repro/internal/pktgen"
	"repro/internal/telemetry"
)

// exportStreams installs the paper filters into an instrumented
// kernel, delivers pkts through the vectorized dispatch path, and
// writes the three correlated streams into dir.
func exportStreams(dir string, pkts []pktgen.Packet) error {
	k := kernel.New()
	rec := telemetry.New()
	k.SetRecorder(rec)
	fr := telemetry.NewFlightRecorder(0)
	k.SetFlightRecorder(fr)
	ring := telemetry.NewAuditRing(0)
	k.SetAuditLog(slog.New(ring.Handler(nil)))

	var reqs []kernel.InstallRequest
	for _, f := range filters.All {
		cert, err := pcc.Certify(filters.Source(f), k.FilterPolicy(), nil)
		if err != nil {
			return err
		}
		reqs = append(reqs, kernel.InstallRequest{Owner: f.String(), Binary: cert.Binary})
	}
	for _, err := range k.InstallFilterBatch(reqs) {
		if err != nil {
			return err
		}
	}
	// A config change is the one operation that lands in all three
	// streams by construction (span + audit record + flight event on
	// one EventID), so the export always demonstrates a three-way join
	// even over a clean trace with no dispatch anomalies.
	if err := k.SetBackend(kernel.BackendCompiled); err != nil {
		return err
	}

	raw := make([][]byte, 0, 1024)
	for lo := 0; lo < len(pkts); lo += 1024 {
		hi := lo + 1024
		if hi > len(pkts) {
			hi = len(pkts)
		}
		raw = raw[:0]
		for _, p := range pkts[lo:hi] {
			raw = append(raw, p.Data)
		}
		if _, err := k.DeliverPackets(raw); err != nil {
			return err
		}
	}

	if err := writeTo(filepath.Join(dir, "spans.jsonl"), rec.Trace().WriteJSONL); err != nil {
		return err
	}
	if err := writeTo(filepath.Join(dir, "audit.jsonl"), ring.WriteJSONL); err != nil {
		return err
	}
	return writeTo(filepath.Join(dir, "flight.json"), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(fr.Snapshot())
	})
}

// writeTo creates path and streams write into it.
func writeTo(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
