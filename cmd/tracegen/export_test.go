package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/pktgen"
	"repro/internal/telemetry"
)

// TestExportStreamsRoundTrip: -export writes the three observability
// streams, they decode with the package readers, and they join on the
// shared correlation EventID — installs across spans+audit, and the
// config change across all three (span + audit record + flight event).
func TestExportStreamsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	pkts := pktgen.Generate(256, pktgen.Config{Seed: 1996})
	if err := exportStreams(dir, pkts); err != nil {
		t.Fatal(err)
	}

	sf, err := os.Open(filepath.Join(dir, "spans.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer sf.Close()
	spans, err := telemetry.ReadJSONL(sf)
	if err != nil {
		t.Fatal(err)
	}
	af, err := os.Open(filepath.Join(dir, "audit.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer af.Close()
	audit, err := telemetry.ReadAuditJSONL(af)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := os.ReadFile(filepath.Join(dir, "flight.json"))
	if err != nil {
		t.Fatal(err)
	}
	var flight telemetry.FlightSnapshot
	if err := json.Unmarshal(fb, &flight); err != nil {
		t.Fatal(err)
	}

	spanIDs := map[uint64][]telemetry.Event{}
	for _, e := range spans {
		if e.Event != 0 {
			spanIDs[e.Event] = append(spanIDs[e.Event], e)
		}
	}
	if len(spanIDs) == 0 {
		t.Fatal("exported spans carry no EventIDs")
	}

	// Every install audit record joins back to a validate span tree on
	// its EventID.
	installs := 0
	for _, r := range audit {
		if r.Kind != "install" {
			continue
		}
		installs++
		if r.Event == 0 {
			t.Fatalf("install audit record without EventID: %+v", r)
		}
		es, ok := spanIDs[r.Event]
		if !ok {
			t.Fatalf("install EventID %d has no spans", r.Event)
		}
		var foundValidate bool
		for _, e := range es {
			if e.Stage == telemetry.StageValidate && e.Detail == r.Owner {
				foundValidate = true
			}
		}
		if !foundValidate {
			t.Fatalf("EventID %d: no validate span for owner %q among %+v", r.Event, r.Owner, es)
		}
	}
	if installs == 0 {
		t.Fatal("export produced no install audit records")
	}

	// The config change (SetBackend) is the three-way join: one
	// EventID present as a config span, a config audit record, and a
	// config_change flight event.
	joined := false
	for _, fe := range flight.Events {
		if fe.Kind != telemetry.FlightConfigChange || fe.Event == 0 {
			continue
		}
		var inSpans, inAudit bool
		for _, e := range spanIDs[fe.Event] {
			if e.Stage == telemetry.StageConfig {
				inSpans = true
			}
		}
		for _, r := range audit {
			if r.Event == fe.Event && r.Kind == "config" {
				inAudit = true
			}
		}
		if inSpans && inAudit {
			joined = true
		}
	}
	if !joined {
		t.Fatal("no EventID joins all three exported streams")
	}

	if flight.Appended != int64(len(flight.Events))+flight.Dropped {
		t.Fatalf("flight snapshot accounting broken: %+v", flight)
	}
}
