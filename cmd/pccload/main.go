// Command pccload is the code consumer of Figure 1: it validates a PCC
// binary against a published policy and, on success, installs and runs
// the extension on the simulated kernel.
//
// Usage:
//
//	pccload [-policy packet-filter/v1] [-run] [-packets N] [-deadline D] filter.pcc...
//	pccload -chaos N [-chaos-seed S]
//	pccload -chaos-store N [-chaos-seed S]
//	pccload -diff-backends N
//	pccload -scale G [-packets N]
//	pccload -install-url http://host:port [-owner NAME] filter.pcc...
//	pccload -tamper-store DIR [-tamper-index N] [-tamper-at N]
//
// With -run and the packet-filter policy, the extension is executed
// over a synthetic trace and the accept rate reported; with the
// resource-access policy, it is invoked on a sample kernel table
// entry. With -deadline, validation runs under a context deadline and
// an expired deadline is a typed rejection, not a hang.
//
// With -chaos, pccload runs the internal/chaos fault-injection harness
// instead of loading binaries: it certifies the paper corpus, derives
// N adversarial mutants (bit-flips, truncations, section swaps, proof
// grafts, resource bombs), validates each one, and exits nonzero if
// any mutant escapes a panic past the validator or validates without
// being provably safe.
//
// With -diff-backends, pccload certifies the paper filter corpus,
// installs it into two kernels — one per dispatch backend — and
// delivers an N-packet trace through both (per-packet on the
// interpreter, vectorized on the compiled backend), cross-checking
// every verdict against the pure-Go reference semantics. Any
// divergence exits nonzero: the operator-facing version of the
// backend-differential test suite.
//
// With -chaos-store, pccload runs the durable-store chaos harness
// instead: it seeds journals from certified installs, damages each one
// (torn tails, truncations, CRC flips, proof bit rot, duplicated and
// reordered frames), runs verified recovery over the wreckage, and
// exits nonzero if recovery ever admits an unsound binary or loses an
// intact acked install. A kill-during-commit sweep rides along,
// cutting one journal at every frame boundary.
//
// With -install-url, pccload is the remote producer: each binary is
// POSTed to a serving pccmon's /install endpoint (the owner defaults
// to the file's base name). A 200 means the monitor journaled the
// install durably before answering.
//
// With -tamper-store, pccload flips one proof byte inside a durable
// store's journal (re-forging the frame CRC so only verified recovery
// can catch it) — the operator-facing way to demonstrate that a
// restored journal is re-proved, not trusted.
//
// With -scale, pccload certifies the paper corpus into one kernel on
// the compiled backend and delivers the trace through it with G
// concurrent goroutines sharing the lock-free filter table, verifying
// the total accept census against the reference semantics and
// reporting aggregate throughput — the operator-facing version of the
// dispatch-scaling benchmark.
//
// Given several binaries (packet-filter policy only), pccload boots
// the simulated kernel and installs them all through its concurrent
// validation pipeline, then installs them a second time to show the
// proof cache: the warm pass skips VC generation and LF checking
// entirely. The cold pass prints a per-file stage table (parse, LF
// signature, VC generation, LF checking, WCET) from the kernel's
// telemetry trace.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	pcc "repro"
	"repro/internal/alpha"
	"repro/internal/chaos"
	"repro/internal/filters"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/pktgen"
	"repro/internal/policy"
	"repro/internal/store"
	"repro/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pccload: ")
	polName := flag.String("policy", "packet-filter/v1", "safety policy name")
	polFile := flag.String("policy-file", "", "load the safety policy from a file (overrides -policy)")
	run := flag.Bool("run", false, "execute the validated extension")
	packets := flag.Int("packets", 10000, "trace length for -run")
	pcapFile := flag.String("pcap", "", "replay packets from a pcap capture instead of the generator")
	trace := flag.Bool("trace", false, "print an instruction trace of the first packet's execution")
	deadline := flag.Duration("deadline", 0, "validation deadline (0 = none)")
	chaosTrials := flag.Int("chaos", 0, "run the fault-injection harness for N trials and exit (takes no binary arguments)")
	chaosSeed := flag.Int64("chaos-seed", 1, "RNG seed for -chaos / -chaos-store; identical seeds replay identically")
	chaosStore := flag.Int("chaos-store", 0, "run the durable-store chaos harness over N mutated journals plus a kill-during-commit sweep, and exit")
	installURL := flag.String("install-url", "", "POST each binary to a serving pccmon at this base URL instead of validating locally")
	owner := flag.String("owner", "", "with -install-url, the owner name (default: each file's base name)")
	tamperStore := flag.String("tamper-store", "", "flip one proof byte in this durable store's journal (CRC re-forged) and exit")
	tamperIndex := flag.Int("tamper-index", 0, "with -tamper-store, which install record to damage (0 = first)")
	tamperAt := flag.Int("tamper-at", 10, "with -tamper-store, byte offset from the end of the binary to flip")
	backend := flag.String("backend", "", "dispatch backend for batch installs: interp or compiled (default kernel default)")
	diffBackends := flag.Int("diff-backends", 0, "cross-check both dispatch backends over an N-packet trace and exit (takes no binary arguments)")
	scale := flag.Int("scale", 0, "deliver the trace through one shared compiled kernel with G concurrent goroutines and exit (takes no binary arguments)")
	flag.Parse()
	if *chaosTrials > 0 {
		if flag.NArg() != 0 {
			log.Fatal("-chaos certifies its own corpus and takes no binary arguments")
		}
		runChaos(*chaosTrials, *chaosSeed)
		return
	}
	if *chaosStore > 0 {
		if flag.NArg() != 0 {
			log.Fatal("-chaos-store certifies its own corpus and takes no binary arguments")
		}
		runChaosStore(*chaosStore, *chaosSeed)
		return
	}
	if *tamperStore != "" {
		victim, err := store.TamperBinaryByte(*tamperStore, *tamperIndex, *tamperAt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("tampered: flipped one proof byte of %q in %s (frame CRC re-forged — only verified recovery can catch this)\n",
			victim, *tamperStore)
		return
	}
	if *installURL != "" {
		if flag.NArg() < 1 {
			log.Fatal("-install-url expects at least one PCC binary")
		}
		remoteInstall(*installURL, *owner, flag.Args())
		return
	}
	if *diffBackends > 0 {
		if flag.NArg() != 0 {
			log.Fatal("-diff-backends certifies its own corpus and takes no binary arguments")
		}
		runDiffBackends(*diffBackends)
		return
	}
	if *scale > 0 {
		if flag.NArg() != 0 {
			log.Fatal("-scale certifies its own corpus and takes no binary arguments")
		}
		runScale(*scale, *packets)
		return
	}
	if flag.NArg() < 1 {
		log.Fatal("expected at least one PCC binary")
	}
	ctx := context.Background()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}
	if flag.NArg() > 1 {
		if *polFile != "" || *polName != "packet-filter/v1" {
			log.Fatal("batch mode installs against the kernel's packet-filter policy only")
		}
		batchInstall(ctx, flag.Args(), *backend)
		return
	}

	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	var pol *policy.Policy
	if *polFile != "" {
		text, err := os.ReadFile(*polFile)
		if err != nil {
			log.Fatal(err)
		}
		if pol, err = policy.Parse(string(text)); err != nil {
			log.Fatal(err)
		}
	} else if pol, err = policy.ByName(*polName); err != nil {
		log.Fatal(err)
	}
	ext, stats, err := pcc.ValidateCtx(ctx, data, pol, nil)
	if err != nil {
		log.Fatalf("REJECTED: %v", err)
	}
	fmt.Printf("VALIDATED %s against %s\n", flag.Arg(0), pol.Name)
	fmt.Printf("  binary:       %d bytes\n", stats.BinarySize)
	fmt.Printf("  validation:   %s (%d LF steps, %.1f KB allocated)\n",
		stats.Time, stats.CheckSteps, float64(stats.HeapBytes)/1024)
	fmt.Printf("  instructions: %d\n", len(ext.Prog))

	if !*run {
		return
	}
	switch pol.Name {
	case "packet-filter/v1", "sfi-segment/v1":
		env := filters.Env{SFI: pol.Name == "sfi-segment/v1"}
		var pkts []pktgen.Packet
		if *pcapFile != "" {
			f, err := os.Open(*pcapFile)
			if err != nil {
				log.Fatal(err)
			}
			pkts, err = pktgen.ReadPcap(f)
			f.Close()
			if err != nil {
				log.Fatal(err)
			}
			if len(pkts) > *packets {
				pkts = pkts[:*packets]
			}
		} else {
			pkts = pktgen.Generate(*packets, pktgen.Config{Seed: 1996})
		}
		if *trace && len(pkts) > 0 {
			fmt.Println("  instruction trace (first packet):")
			s := env.NewState(pkts[0].Data)
			_, err := machine.InterpTraced(ext.Prog, s, machine.Unchecked, &machine.DEC21064, 1<<20,
				func(pc int, ins alpha.Instr, st *machine.State) {
					fmt.Printf("    %3d: %-24s r0=%#x r4=%#x r5=%#x r6=%#x\n",
						pc, ins.String(), st.R[0], st.R[4], st.R[5], st.R[6])
				})
			if err != nil {
				log.Fatalf("trace run fault: %v", err)
			}
		}
		accepted := 0
		var cycles int64
		for _, p := range pkts {
			ret, c, err := env.Exec(ext.Prog, p.Data, machine.Unchecked)
			if err != nil {
				log.Fatalf("execution fault: %v", err)
			}
			cycles += c
			if ret != 0 {
				accepted++
			}
		}
		fmt.Printf("  ran %d packets: %d accepted, %.2f µs/packet on the modeled Alpha\n",
			len(pkts), accepted, machine.Micros(cycles)/float64(len(pkts)))
	case "resource-access/v1":
		mem := machine.NewMemory()
		entry := machine.NewRegion("table", 0x1000, 16, true)
		entry.SetWord(0, 1)  // tag: writable
		entry.SetWord(8, 41) // data
		mem.MustAddRegion(entry)
		s := &machine.State{Mem: mem}
		s.R[0] = 0x1000
		if _, err := ext.Run(s, 1000); err != nil {
			log.Fatalf("execution fault: %v", err)
		}
		fmt.Printf("  ran on a {tag:1, data:41} entry: data is now %d\n",
			entry.Word(8))
	default:
		fmt.Println("  (no runner for this policy)")
	}
}

// runChaos is the -chaos entry point: certify the paper corpus, derive
// trials adversarial mutants, validate every one, and report. The step
// budget is lowered from the default so hand-crafted proof bombs die
// in milliseconds instead of minutes — every legitimate base checks in
// well under 11k steps, so the margin is still generous.
func runChaos(trials int, seed int64) {
	bases, err := chaos.PaperBases()
	if err != nil {
		log.Fatal(err)
	}
	lim := pcc.DefaultLimits()
	lim.MaxCheckSteps = 50_000
	start := time.Now()
	rep := chaos.Run(bases, chaos.ValidateTarget(&lim), chaos.Config{Seed: seed, Trials: trials})
	fmt.Print(rep)
	fmt.Printf("  elapsed %v\n", time.Since(start))
	if !rep.Ok() {
		log.Fatalf("chaos: %d invariant violation(s)", len(rep.Violations))
	}
	fmt.Println("chaos: invariants held (no escaped panics, no unsound accepts)")
}

// runChaosStore is the -chaos-store entry point: n mutated-journal
// trials through the durable-store chaos harness, then a
// kill-during-commit sweep over one journal. Exits nonzero on any
// invariant violation: an unsound binary admitted by recovery, or an
// intact acked install lost.
func runChaosStore(n int, seed int64) {
	bases, err := chaos.PaperBases()
	if err != nil {
		log.Fatal(err)
	}
	scratch, err := os.MkdirTemp("", "pcc-chaos-store-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(scratch)

	start := time.Now()
	rep := chaos.StoreRun(bases, scratch, chaos.StoreConfig{Seed: seed, Trials: n})
	fmt.Print(rep)

	cuts := n / 8
	if cuts < 8 {
		cuts = 8
	}
	sweep := chaos.StoreKillSweep(bases, scratch, 8, cuts, seed)
	fmt.Printf("kill sweep: %d cut points (every frame boundary plus mid-frame), %d restores\n",
		sweep.Trials, sweep.Restored)
	for _, v := range sweep.Violations {
		fmt.Printf("  VIOLATION trial %d (%s): %s\n", v.Trial, v.Mutator, v.Detail)
	}
	fmt.Printf("  elapsed %v\n", time.Since(start))
	if !rep.Ok() || !sweep.Ok() {
		log.Fatalf("chaos-store: %d invariant violation(s)",
			len(rep.Violations)+len(sweep.Violations))
	}
	fmt.Printf("chaos-store: invariants held over %d damaged journals (no unsound accepts, no lost acked installs)\n",
		rep.Trials+sweep.Trials)
}

// remoteInstall is the -install-url entry point: POST each binary to a
// serving pccmon's /install endpoint. The serving side runs the whole
// validation pipeline and, when a store is attached, journals the
// install before answering — a 200 here is a durable ack.
func remoteInstall(base, owner string, files []string) {
	base = strings.TrimSuffix(base, "/")
	failed := 0
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			log.Fatal(err)
		}
		name := owner
		if name == "" || len(files) > 1 {
			name = strings.TrimSuffix(filepath.Base(file), ".pcc")
		}
		u := base + "/install?owner=" + url.QueryEscape(name)
		resp, err := http.Post(u, "application/octet-stream", bytes.NewReader(data))
		if err != nil {
			log.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			log.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			failed++
			fmt.Printf("REJECTED %s as %q: %d %s\n", file, name, resp.StatusCode,
				strings.TrimSpace(string(body)))
			continue
		}
		fmt.Printf("INSTALLED %s as %q: %s\n", file, name, strings.TrimSpace(string(body)))
	}
	if failed > 0 {
		log.Fatalf("install-url: %d of %d binaries rejected", failed, len(files))
	}
}

// runDiffBackends is the -diff-backends entry point: the paper corpus
// installed into one kernel per backend, an n-packet trace delivered
// through both (per-packet interpreted, vectorized compiled), every
// verdict cross-checked against the reference semantics. Exits nonzero
// on the first divergence.
func runDiffBackends(n int) {
	kinterp := kernel.New()
	kcomp := kernel.New()
	if err := kcomp.SetBackend(kernel.BackendCompiled); err != nil {
		log.Fatal(err)
	}
	owners := make(map[filters.Filter]string, len(filters.All))
	for _, f := range filters.All {
		owner := fmt.Sprintf("proc-%d", f)
		owners[f] = owner
		cert, err := pcc.Certify(filters.Source(f), kinterp.FilterPolicy(), nil)
		if err != nil {
			log.Fatalf("%v: %v", f, err)
		}
		for _, k := range []*kernel.Kernel{kinterp, kcomp} {
			if err := k.InstallFilter(owner, cert.Binary); err != nil {
				log.Fatalf("%v: %v", f, err)
			}
		}
	}

	pkts := pktgen.Generate(n, pktgen.Config{Seed: 1996})
	raw := make([][]byte, len(pkts))
	for i, p := range pkts {
		raw[i] = p.Data
	}
	divergences := 0
	report := func(pi int, kind string, got, want []string) {
		divergences++
		if divergences <= 10 {
			fmt.Printf("DIVERGENCE packet %d (%s): got %v, reference says %v\n",
				pi, kind, got, want)
		}
	}
	start := time.Now()
	for lo := 0; lo < len(raw); lo += 1024 {
		hi := lo + 1024
		if hi > len(raw) {
			hi = len(raw)
		}
		batch, err := kcomp.DeliverPackets(raw[lo:hi])
		if err != nil {
			log.Fatalf("compiled dispatch fault: %v", err)
		}
		for i, data := range raw[lo:hi] {
			single, err := kinterp.DeliverPacket(pktgen.Packet{Data: data})
			if err != nil {
				log.Fatalf("interpreted dispatch fault: %v", err)
			}
			var want []string
			for _, f := range filters.All {
				if filters.Reference(f, data) {
					want = append(want, owners[f])
				}
			}
			if !equalStrings(single, want) {
				report(lo+i, "interp/single", single, want)
			}
			if !equalStrings(batch[i], want) {
				report(lo+i, "compiled/batch", batch[i], want)
			}
		}
	}
	if divergences > 0 {
		log.Fatalf("diff-backends: %d divergence(s) over %d packets", divergences, len(pkts))
	}
	fmt.Printf("diff-backends: %d packets × %d filters, both backends match the reference semantics (%v)\n",
		len(pkts), len(filters.All), time.Since(start).Round(time.Millisecond))
}

// runScale is the -scale entry point: the paper corpus in one kernel
// on the compiled backend, the trace delivered by g goroutines pulling
// 1024-packet batches off a shared queue — all of them reading the
// same lock-free filter-table snapshot. The total accept census must
// match the reference semantics exactly; a torn snapshot or a lost
// shard increment shows up as a census mismatch and a nonzero exit.
func runScale(g, n int) {
	k := kernel.New()
	if err := k.SetBackend(kernel.BackendCompiled); err != nil {
		log.Fatal(err)
	}
	for _, f := range filters.All {
		cert, err := pcc.Certify(filters.Source(f), k.FilterPolicy(), nil)
		if err != nil {
			log.Fatalf("%v: %v", f, err)
		}
		if err := k.InstallFilter(fmt.Sprintf("proc-%d", f), cert.Binary); err != nil {
			log.Fatalf("%v: %v", f, err)
		}
	}

	pkts := pktgen.Generate(n, pktgen.Config{Seed: 1996})
	raw := make([][]byte, len(pkts))
	wantAccepts := 0
	for i, p := range pkts {
		raw[i] = p.Data
		for _, f := range filters.All {
			if filters.Reference(f, p.Data) {
				wantAccepts++
			}
		}
	}
	var batches [][][]byte
	for lo := 0; lo < len(raw); lo += 1024 {
		hi := lo + 1024
		if hi > len(raw) {
			hi = len(raw)
		}
		batches = append(batches, raw[lo:hi])
	}

	var next, accepted atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var acc int64
			for {
				i := next.Add(1) - 1
				if int(i) >= len(batches) {
					break
				}
				out, err := k.DeliverPackets(batches[i])
				if err != nil {
					log.Fatalf("dispatch fault: %v", err)
				}
				for _, row := range out {
					acc += int64(len(row))
				}
			}
			accepted.Add(acc)
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	if int(accepted.Load()) != wantAccepts {
		log.Fatalf("scale: %d accepts over %d packets, reference says %d — snapshot or counter bug",
			accepted.Load(), len(pkts), wantAccepts)
	}
	st := k.Stats()
	if st.Packets != len(pkts) {
		log.Fatalf("scale: kernel counted %d packets, delivered %d — lost shard increments", st.Packets, len(pkts))
	}
	fmt.Printf("scale: %d packets × %d filters via %d goroutines (GOMAXPROCS=%d): "+
		"%.0f packets/sec aggregate, accept census matches the reference (%d)\n",
		len(pkts), len(filters.All), g, runtime.GOMAXPROCS(0),
		float64(len(pkts))/wall.Seconds(), wantAccepts)
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// batchInstall pushes every binary through the kernel's concurrent
// validation pipeline twice: a cold pass that proof-checks each one,
// and a warm pass served from the content-addressed proof cache. A
// telemetry recorder rides along, so the cold pass also yields a
// per-file stage table showing where each binary's one-time cost went.
func batchInstall(ctx context.Context, files []string, backend string) {
	k := kernel.New()
	if backend != "" {
		b, err := kernel.ParseBackend(backend)
		if err != nil {
			log.Fatal(err)
		}
		if err := k.SetBackend(b); err != nil {
			log.Fatal(err)
		}
	}
	rec := telemetry.New()
	k.SetRecorder(rec)
	var reqs []kernel.InstallRequest
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			log.Fatal(err)
		}
		reqs = append(reqs, kernel.InstallRequest{Owner: file, Binary: data})
	}
	start := time.Now()
	rejected := 0
	for i, err := range k.InstallFilterBatchCtx(ctx, reqs) {
		if err != nil {
			rejected++
			fmt.Printf("REJECTED %s: %v\n", reqs[i].Owner, err)
		} else {
			fmt.Printf("VALIDATED %s\n", reqs[i].Owner)
		}
	}
	cold := time.Since(start)
	printStageTable(rec, reqs)

	start = time.Now()
	for _, err := range k.InstallFilterBatch(reqs) {
		_ = err // same verdicts; rejected binaries re-validate and re-fail
	}
	warm := time.Since(start)

	st := k.Stats()
	fmt.Printf("installed %d/%d binaries on %d validator(s)\n",
		len(reqs)-rejected, len(reqs), runtime.GOMAXPROCS(0))
	fmt.Printf("  cold batch: %v (%.2f ms proof checking, queue wait %.0f µs)\n",
		cold, st.ValidationMicros/1000, st.QueueWaitMicros)
	fmt.Printf("  warm batch: %v — proof cache: %d hits / %d misses\n",
		warm, st.CacheHits, st.CacheMisses)
}

// printStageTable renders the cold pass's per-file validation-stage
// breakdown from the telemetry trace (µs per stage, one row per file),
// with each install's correlation EventID — the key that joins the row
// to its audit record and any flight events in offline dumps.
func printStageTable(rec *telemetry.Recorder, reqs []kernel.InstallRequest) {
	stages := []string{
		telemetry.StageParse, telemetry.StageLFSig, telemetry.StageVCGen,
		telemetry.StageLFCheck, telemetry.StageWCET,
	}
	byFile := map[string]map[string]float64{} // file -> stage -> µs
	eidByFile := map[string]uint64{}          // file -> correlation EventID
	for _, e := range rec.Trace().Events() {
		if e.Stage == telemetry.StageValidate {
			eidByFile[e.Detail] = e.Event
		}
		for _, s := range stages {
			if e.Stage == s {
				if byFile[e.Detail] == nil {
					byFile[e.Detail] = map[string]float64{}
				}
				byFile[e.Detail][s] += float64(e.DurNanos) / 1e3
			}
		}
	}
	fmt.Printf("\nvalidation cost by stage (µs):\n")
	fmt.Printf("%-24s %8s %8s %8s %8s %8s %9s  %s\n",
		"file", "parse", "lfsig", "vcgen", "lfcheck", "wcet", "total", "event")
	for _, r := range reqs {
		st, ok := byFile[r.Owner]
		if !ok {
			continue // rejected before the stage breakdown
		}
		var total float64
		for _, s := range stages {
			total += st[s]
		}
		fmt.Printf("%-24s %8.0f %8.0f %8.0f %8.0f %8.0f %9.0f  %d\n", r.Owner,
			st[telemetry.StageParse], st[telemetry.StageLFSig], st[telemetry.StageVCGen],
			st[telemetry.StageLFCheck], st[telemetry.StageWCET], total, eidByFile[r.Owner])
	}
	fmt.Println()
}
