// Command pccpolicy manages textual safety-policy files: it checks and
// pretty-prints them, lists the built-in policies, and implements the
// §4 policy-negotiation protocol (a consumer deciding whether a
// producer-proposed policy implies its own).
//
// Usage:
//
//	pccpolicy list
//	pccpolicy show packet-filter/v1
//	pccpolicy check my-policy.txt
//	pccpolicy negotiate -base packet-filter/v1 proposed.txt
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	pcc "repro"
	"repro/internal/lf"
	"repro/internal/policy"
)

var builtins = []string{
	"packet-filter/v1", "resource-access/v1", "sfi-segment/v1", "semaphore/v1",
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("pccpolicy: ")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "list":
		for _, name := range builtins {
			p, err := policy.ByName(name)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-22s %s\n", p.Name, p.Convention)
		}
	case "show":
		if len(os.Args) != 3 {
			usage()
		}
		p, err := loadPolicy(os.Args[2])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(policy.Format(p))
	case "check":
		if len(os.Args) != 3 {
			usage()
		}
		p, err := loadPolicy(os.Args[2])
		if err != nil {
			log.Fatalf("INVALID: %v", err)
		}
		fmt.Printf("OK: %s\n", p.Name)
	case "sig":
		fmt.Print(lf.FormatSignature(lf.NewSignature()))
	case "negotiate":
		fs := flag.NewFlagSet("negotiate", flag.ExitOnError)
		base := fs.String("base", "packet-filter/v1", "the consumer's own policy (name or file)")
		if err := fs.Parse(os.Args[2:]); err != nil || fs.NArg() != 1 {
			usage()
		}
		basePol, err := loadPolicy(*base)
		if err != nil {
			log.Fatal(err)
		}
		proposed, err := loadPolicy(fs.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		if err := pcc.NegotiatePolicy(basePol, proposed); err != nil {
			log.Fatalf("REJECTED: %v", err)
		}
		fmt.Printf("ACCEPTED: %q may be used in place of %q\n", proposed.Name, basePol.Name)
	default:
		usage()
	}
}

// loadPolicy resolves a built-in name or reads a policy file.
func loadPolicy(nameOrFile string) (*policy.Policy, error) {
	if p, err := policy.ByName(nameOrFile); err == nil {
		return p, nil
	}
	data, err := os.ReadFile(nameOrFile)
	if err != nil {
		return nil, err
	}
	return policy.Parse(string(data))
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  pccpolicy list
  pccpolicy show <name-or-file>
  pccpolicy check <file>
  pccpolicy sig
  pccpolicy negotiate -base <name-or-file> <proposed-file>`)
	os.Exit(2)
}
