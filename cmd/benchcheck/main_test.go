package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
)

func TestParallelFloor(t *testing.T) {
	cases := []struct {
		flag             float64
		goroutines, cpus int
		want             float64
	}{
		{3.0, 8, 8, 3.0},  // wide host: the flag binds
		{3.0, 8, 16, 3.0}, // more cores than goroutines: still the flag
		{3.0, 8, 1, 0.85}, // single core: no-convoy floor
		{3.0, 8, 2, 1.7},  // two cores: 85% of 2
		{3.0, 4, 8, 3.0},  // ladder narrower than the host
		{0.5, 8, 1, 0.5},  // flag below the cap: flag binds
	}
	for _, c := range cases {
		if got := parallelFloor(c.flag, c.goroutines, c.cpus); got != c.want {
			t.Errorf("parallelFloor(%v, %d, %d) = %v, want %v",
				c.flag, c.goroutines, c.cpus, got, c.want)
		}
	}
}

// writeReport drops a minimal passing current-schema report into dir
// and returns its path; the mutate hook lets each case break one field.
func writeReport(t *testing.T, dir string, mutate func(*bench.Report)) string {
	t.Helper()
	rep := &bench.Report{
		Schema: bench.ReportSchema,
		Dispatch: []bench.DispatchJSON{
			{Backend: "interp", Shape: "single", PPS: 100},
			{Backend: "compiled", Shape: "single", PPS: 500},
			{Backend: "interp", Shape: "batch1024", PPS: 200},
			{Backend: "compiled", Shape: "batch1024", PPS: 900},
		},
		DispatchSpeedup: 9.0,
		CertCost: []bench.CertCostJSON{
			{Filter: "Filter 1", CodeBytes: 64, ProofBytes: 300, ProofNodes: 400, VCNodes: 120, CheckSteps: 500},
		},
		Observability: []bench.ObservabilityJSON{
			{Config: "compiled+prof+obs", PPS: 900, Observers: true},
			{Config: "compiled+prof+obs+win", PPS: 880, Observers: true, Windowed: true},
		},
		ProfilingOverheadPct: 5,
		WindowOverheadPct:    2.2,
		DispatchScaling: []bench.ScalingJSON{
			{Goroutines: 1, PPS: 900},
			{Goroutines: 8, PPS: 3100},
		},
		ParallelSpeedup: 3.4,
		GOMAXPROCS:      8,
		Recovery: []bench.RecoveryJSON{
			{Config: "cold", Records: 200, Restored: 200, RecordsPerSec: 230},
			{Config: "warm", Records: 200, Restored: 200, RecordsPerSec: 9000},
		},
		WarmRecoverySpeedup: 39.1,
	}
	if mutate != nil {
		mutate(rep)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "BENCH_20260807T000000Z.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckFileParallelGate(t *testing.T) {
	t.Run("passes", func(t *testing.T) {
		path := writeReport(t, t.TempDir(), nil)
		if msgs := checkFile(path, 1.0, 15.0, 3.0, 20.0, 5.0); len(msgs) != 0 {
			t.Fatalf("unexpected failures: %v", msgs)
		}
	})
	t.Run("slow ladder fails on a wide host", func(t *testing.T) {
		path := writeReport(t, t.TempDir(), func(r *bench.Report) {
			r.ParallelSpeedup = 1.1 // 8 cores available: a convoy
		})
		msgs := checkFile(path, 1.0, 15.0, 3.0, 20.0, 5.0)
		if len(msgs) != 1 || !strings.Contains(msgs[0], "parallel_speedup") {
			t.Fatalf("want one parallel_speedup failure, got %v", msgs)
		}
	})
	t.Run("same ratio passes on a single core", func(t *testing.T) {
		path := writeReport(t, t.TempDir(), func(r *bench.Report) {
			r.ParallelSpeedup = 1.1
			r.GOMAXPROCS = 1 // floor degrades to 0.85
		})
		if msgs := checkFile(path, 1.0, 15.0, 3.0, 20.0, 5.0); len(msgs) != 0 {
			t.Fatalf("unexpected failures: %v", msgs)
		}
	})
	t.Run("convoy fails even on a single core", func(t *testing.T) {
		path := writeReport(t, t.TempDir(), func(r *bench.Report) {
			r.ParallelSpeedup = 0.4
			r.GOMAXPROCS = 1
		})
		msgs := checkFile(path, 1.0, 15.0, 3.0, 20.0, 5.0)
		if len(msgs) != 1 || !strings.Contains(msgs[0], "parallel_speedup") {
			t.Fatalf("want one parallel_speedup failure, got %v", msgs)
		}
	})
	t.Run("schema 4 requires the section", func(t *testing.T) {
		path := writeReport(t, t.TempDir(), func(r *bench.Report) {
			r.DispatchScaling = nil
		})
		msgs := checkFile(path, 1.0, 15.0, 3.0, 20.0, 5.0)
		if len(msgs) != 1 || !strings.Contains(msgs[0], "dispatch_scaling") {
			t.Fatalf("want one dispatch_scaling failure, got %v", msgs)
		}
	})
	t.Run("older schema skips the gate", func(t *testing.T) {
		path := writeReport(t, t.TempDir(), func(r *bench.Report) {
			r.Schema = 3
			r.DispatchScaling = nil
			r.ParallelSpeedup = 0
			r.GOMAXPROCS = 0
		})
		if msgs := checkFile(path, 1.0, 15.0, 3.0, 20.0, 5.0); len(msgs) != 0 {
			t.Fatalf("unexpected failures: %v", msgs)
		}
	})
}

func TestCheckFileSchema5Gate(t *testing.T) {
	t.Run("missing cert_cost fails", func(t *testing.T) {
		path := writeReport(t, t.TempDir(), func(r *bench.Report) {
			r.CertCost = nil
		})
		msgs := checkFile(path, 1.0, 15.0, 3.0, 20.0, 5.0)
		if len(msgs) != 1 || !strings.Contains(msgs[0], "cert_cost") {
			t.Fatalf("want one cert_cost failure, got %v", msgs)
		}
	})
	t.Run("vanished proof sizes fail", func(t *testing.T) {
		path := writeReport(t, t.TempDir(), func(r *bench.Report) {
			r.CertCost[0].ProofBytes = 0
		})
		msgs := checkFile(path, 1.0, 15.0, 3.0, 20.0, 5.0)
		if len(msgs) != 1 || !strings.Contains(msgs[0], "implausible sizes") {
			t.Fatalf("want one implausible-sizes failure, got %v", msgs)
		}
	})
	t.Run("missing windowed config fails", func(t *testing.T) {
		path := writeReport(t, t.TempDir(), func(r *bench.Report) {
			r.Observability = r.Observability[:1] // drop the +win row
		})
		msgs := checkFile(path, 1.0, 15.0, 3.0, 20.0, 5.0)
		if len(msgs) != 1 || !strings.Contains(msgs[0], "windowed configuration") {
			t.Fatalf("want one windowed-configuration failure, got %v", msgs)
		}
	})
	t.Run("window overhead above ceiling fails", func(t *testing.T) {
		path := writeReport(t, t.TempDir(), func(r *bench.Report) {
			r.WindowOverheadPct = 45.0
		})
		msgs := checkFile(path, 1.0, 15.0, 3.0, 20.0, 5.0)
		if len(msgs) != 1 || !strings.Contains(msgs[0], "window_overhead_pct") {
			t.Fatalf("want one window_overhead_pct failure, got %v", msgs)
		}
	})
	t.Run("negative overhead is noise, passes", func(t *testing.T) {
		path := writeReport(t, t.TempDir(), func(r *bench.Report) {
			r.WindowOverheadPct = -1.5 // windowed run measured faster
		})
		if msgs := checkFile(path, 1.0, 15.0, 3.0, 20.0, 5.0); len(msgs) != 0 {
			t.Fatalf("unexpected failures: %v", msgs)
		}
	})
}

func TestCheckFileSchema6Gate(t *testing.T) {
	t.Run("missing recovery pair fails", func(t *testing.T) {
		path := writeReport(t, t.TempDir(), func(r *bench.Report) {
			r.Recovery = r.Recovery[:1] // drop the warm row
		})
		msgs := checkFile(path, 1.0, 15.0, 3.0, 20.0, 5.0)
		if len(msgs) != 1 || !strings.Contains(msgs[0], "cold/warm pair") {
			t.Fatalf("want one cold/warm-pair failure, got %v", msgs)
		}
	})
	t.Run("lossy replay fails", func(t *testing.T) {
		path := writeReport(t, t.TempDir(), func(r *bench.Report) {
			r.Recovery[1].Restored = 180
		})
		msgs := checkFile(path, 1.0, 15.0, 3.0, 20.0, 5.0)
		if len(msgs) != 1 || !strings.Contains(msgs[0], "losslessly") {
			t.Fatalf("want one lossless-replay failure, got %v", msgs)
		}
	})
	t.Run("slow warm replay fails", func(t *testing.T) {
		path := writeReport(t, t.TempDir(), func(r *bench.Report) {
			r.WarmRecoverySpeedup = 2.0
		})
		msgs := checkFile(path, 1.0, 15.0, 3.0, 20.0, 5.0)
		if len(msgs) != 1 || !strings.Contains(msgs[0], "warm_recovery_speedup") {
			t.Fatalf("want one warm_recovery_speedup failure, got %v", msgs)
		}
	})
	t.Run("schema 5 skips the gate", func(t *testing.T) {
		path := writeReport(t, t.TempDir(), func(r *bench.Report) {
			r.Schema = 5
			r.Recovery = nil
			r.WarmRecoverySpeedup = 0
		})
		if msgs := checkFile(path, 1.0, 15.0, 3.0, 20.0, 5.0); len(msgs) != 0 {
			t.Fatalf("unexpected failures: %v", msgs)
		}
	})
}
