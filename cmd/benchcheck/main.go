// Command benchcheck is the dispatch-performance regression gate: it
// reads one or more BENCH_<timestamp>.json reports (paperbench -json)
// and fails if the compiled backend has regressed below the
// interpreter — the whole point of install-time compilation — or if
// the headline batch-compiled speedup has fallen under a floor.
//
// Usage:
//
//	benchcheck [-min-speedup X] [-max-profiling-overhead P] [BENCH_file.json ...]
//
// With no file arguments, the newest BENCH_*.json in the current
// directory is checked. The checks are deliberately about ordering
// and ratios, not absolute nanoseconds, so the gate is portable
// across hosts of different speeds:
//
//   - the report carries a dispatch section (schema ≥ 2);
//   - for every dispatch shape measured under both backends, the
//     compiled backend's packets/sec is at least the interpreter's;
//   - the recorded dispatch_speedup (batch-compiled over
//     single-interpreted) meets -min-speedup;
//   - for schema ≥ 3 reports, the recorded profiling_overhead_pct
//     (compiled throughput lost to always-on per-block profiling)
//     stays under -max-profiling-overhead.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"repro/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchcheck: ")
	minSpeedup := flag.Float64("min-speedup", 1.0,
		"minimum dispatch_speedup (batch-compiled over single-interpreted packets/sec)")
	maxProfOverhead := flag.Float64("max-profiling-overhead", 15.0,
		"maximum profiling_overhead_pct for schema ≥ 3 reports (percent of compiled throughput)")
	flag.Parse()

	files := flag.Args()
	if len(files) == 0 {
		newest, err := newestReport(".")
		if err != nil {
			log.Fatal(err)
		}
		files = []string{newest}
	}

	failures := 0
	for _, file := range files {
		for _, msg := range checkFile(file, *minSpeedup, *maxProfOverhead) {
			failures++
			fmt.Fprintf(os.Stderr, "FAIL %s: %s\n", file, msg)
		}
	}
	if failures > 0 {
		log.Fatalf("%d check(s) failed", failures)
	}
	fmt.Printf("benchcheck: OK (%d report(s))\n", len(files))
}

// newestReport finds the lexicographically last BENCH_*.json in dir —
// the filenames embed a UTC timestamp, so last sorts newest.
func newestReport(dir string) (string, error) {
	names, err := listReports(dir)
	if err != nil {
		return "", err
	}
	if len(names) == 0 {
		return "", fmt.Errorf("no BENCH_*.json in %s (run paperbench -json first)", dir)
	}
	return names[len(names)-1], nil
}

func listReports(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if !e.IsDir() && len(n) > 6 && n[:6] == "BENCH_" && n[len(n)-5:] == ".json" {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names, nil
}

// checkFile returns the list of failed-check messages for one report.
func checkFile(file string, minSpeedup, maxProfOverhead float64) []string {
	data, err := os.ReadFile(file)
	if err != nil {
		return []string{err.Error()}
	}
	var rep bench.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return []string{fmt.Sprintf("not a benchmark report: %v", err)}
	}

	var msgs []string
	if rep.Schema < 2 {
		return []string{fmt.Sprintf("schema %d predates the dispatch section (need ≥ 2)", rep.Schema)}
	}
	if len(rep.Dispatch) == 0 {
		return []string{"dispatch section is empty"}
	}

	// Per-shape ordering: compiled must not be slower than interp.
	pps := map[string]map[string]float64{} // shape -> backend -> pps
	for _, d := range rep.Dispatch {
		if pps[d.Shape] == nil {
			pps[d.Shape] = map[string]float64{}
		}
		pps[d.Shape][d.Backend] = d.PPS
	}
	shapes := make([]string, 0, len(pps))
	for s := range pps {
		shapes = append(shapes, s)
	}
	sort.Strings(shapes)
	for _, s := range shapes {
		interp, okI := pps[s]["interp"]
		compiled, okC := pps[s]["compiled"]
		if okI && okC && compiled < interp {
			msgs = append(msgs, fmt.Sprintf(
				"shape %s: compiled backend slower than interpreter (%.0f vs %.0f packets/sec)",
				s, compiled, interp))
		}
	}

	if rep.DispatchSpeedup < minSpeedup {
		msgs = append(msgs, fmt.Sprintf(
			"dispatch_speedup %.2fx below floor %.2fx", rep.DispatchSpeedup, minSpeedup))
	}

	// Schema 3 added the observability section: always-on compiled
	// profiling must stay within the overhead budget.
	if rep.Schema >= 3 {
		if len(rep.Observability) == 0 {
			msgs = append(msgs, "observability section is empty (schema ≥ 3 requires it)")
		} else if rep.ProfilingOverheadPct > maxProfOverhead {
			msgs = append(msgs, fmt.Sprintf(
				"profiling_overhead_pct %.1f%% above ceiling %.1f%%",
				rep.ProfilingOverheadPct, maxProfOverhead))
		}
	}
	return msgs
}
