// Command benchcheck is the dispatch-performance regression gate: it
// reads one or more BENCH_<timestamp>.json reports (paperbench -json)
// and fails if the compiled backend has regressed below the
// interpreter — the whole point of install-time compilation — or if
// the headline batch-compiled speedup has fallen under a floor.
//
// Usage:
//
//	benchcheck [-min-speedup X] [-max-profiling-overhead P]
//	           [-min-parallel-speedup S] [-max-window-overhead W]
//	           [-min-warm-recovery-speedup R]
//	           [BENCH_file.json ...]
//
// With no file arguments, the newest BENCH_*.json in the current
// directory is checked. The checks are deliberately about ordering
// and ratios, not absolute nanoseconds, so the gate is portable
// across hosts of different speeds:
//
//   - the report carries a dispatch section (schema ≥ 2);
//   - for every dispatch shape measured under both backends, the
//     compiled backend's packets/sec is at least the interpreter's;
//   - the recorded dispatch_speedup (batch-compiled over
//     single-interpreted) meets -min-speedup;
//   - for schema ≥ 3 reports, the recorded profiling_overhead_pct
//     (compiled throughput lost to always-on per-block profiling)
//     stays under -max-profiling-overhead;
//   - for schema ≥ 4 reports, the recorded parallel_speedup (the
//     widest rung of the lock-free multi-goroutine dispatch ladder
//     over one goroutine) meets the core-aware floor derived from
//     -min-parallel-speedup;
//   - for schema ≥ 5 reports, the cert_cost section is present with
//     plausible per-filter sizes (nonzero proof bytes and VC nodes —
//     the proof-size baseline must not silently vanish), the
//     observability matrix includes the windowed configuration, and
//     the recorded window_overhead_pct (throughput lost to the
//     sliding-window recorder layer relative to the plain-recorder
//     observed posture) stays under -max-window-overhead;
//   - for schema ≥ 6 reports, the recovery section is present with
//     both the cold and warm configurations replaying the full
//     journal losslessly, and the recorded warm_recovery_speedup
//     (warm records/sec over cold — the proof cache's contribution
//     to reboot time) meets -min-warm-recovery-speedup.
//
// The parallel floor is core-aware because the report records the
// GOMAXPROCS the ladder ran under: the achievable ceiling on a host
// with C cores is min(goroutines, C), so the effective floor is
// min(-min-parallel-speedup, 0.85 × min(widest rung, C)). On an
// 8-core host the default demands a real 3x; on a single-core host
// it degrades to ~0.85 — "adding goroutines must not regress
// throughput", which is exactly the property a lock convoy would
// break — rather than demanding physically impossible parallelism.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"repro/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchcheck: ")
	minSpeedup := flag.Float64("min-speedup", 1.0,
		"minimum dispatch_speedup (batch-compiled over single-interpreted packets/sec)")
	maxProfOverhead := flag.Float64("max-profiling-overhead", 15.0,
		"maximum profiling_overhead_pct for schema ≥ 3 reports (percent of compiled throughput)")
	minParallel := flag.Float64("min-parallel-speedup", 3.0,
		"minimum parallel_speedup for schema ≥ 4 reports, capped by the report's recorded core budget (see doc)")
	maxWinOverhead := flag.Float64("max-window-overhead", 20.0,
		"maximum window_overhead_pct for schema ≥ 5 reports (percent of plain-recorder observed throughput)")
	minWarmRecovery := flag.Float64("min-warm-recovery-speedup", 5.0,
		"minimum warm_recovery_speedup for schema ≥ 6 reports (warm journal-replay records/sec over cold)")
	flag.Parse()

	files := flag.Args()
	if len(files) == 0 {
		newest, err := newestReport(".")
		if err != nil {
			log.Fatal(err)
		}
		files = []string{newest}
	}

	failures := 0
	for _, file := range files {
		for _, msg := range checkFile(file, *minSpeedup, *maxProfOverhead, *minParallel, *maxWinOverhead, *minWarmRecovery) {
			failures++
			fmt.Fprintf(os.Stderr, "FAIL %s: %s\n", file, msg)
		}
	}
	if failures > 0 {
		log.Fatalf("%d check(s) failed", failures)
	}
	fmt.Printf("benchcheck: OK (%d report(s))\n", len(files))
}

// newestReport finds the lexicographically last BENCH_*.json in dir —
// the filenames embed a UTC timestamp, so last sorts newest.
func newestReport(dir string) (string, error) {
	names, err := listReports(dir)
	if err != nil {
		return "", err
	}
	if len(names) == 0 {
		return "", fmt.Errorf("no BENCH_*.json in %s (run paperbench -json first)", dir)
	}
	return names[len(names)-1], nil
}

func listReports(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if !e.IsDir() && len(n) > 6 && n[:6] == "BENCH_" && n[len(n)-5:] == ".json" {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names, nil
}

// checkFile returns the list of failed-check messages for one report.
func checkFile(file string, minSpeedup, maxProfOverhead, minParallel, maxWinOverhead, minWarmRecovery float64) []string {
	data, err := os.ReadFile(file)
	if err != nil {
		return []string{err.Error()}
	}
	var rep bench.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return []string{fmt.Sprintf("not a benchmark report: %v", err)}
	}

	var msgs []string
	if rep.Schema < 2 {
		return []string{fmt.Sprintf("schema %d predates the dispatch section (need ≥ 2)", rep.Schema)}
	}
	if len(rep.Dispatch) == 0 {
		return []string{"dispatch section is empty"}
	}

	// Per-shape ordering: compiled must not be slower than interp.
	pps := map[string]map[string]float64{} // shape -> backend -> pps
	for _, d := range rep.Dispatch {
		if pps[d.Shape] == nil {
			pps[d.Shape] = map[string]float64{}
		}
		pps[d.Shape][d.Backend] = d.PPS
	}
	shapes := make([]string, 0, len(pps))
	for s := range pps {
		shapes = append(shapes, s)
	}
	sort.Strings(shapes)
	for _, s := range shapes {
		interp, okI := pps[s]["interp"]
		compiled, okC := pps[s]["compiled"]
		if okI && okC && compiled < interp {
			msgs = append(msgs, fmt.Sprintf(
				"shape %s: compiled backend slower than interpreter (%.0f vs %.0f packets/sec)",
				s, compiled, interp))
		}
	}

	if rep.DispatchSpeedup < minSpeedup {
		msgs = append(msgs, fmt.Sprintf(
			"dispatch_speedup %.2fx below floor %.2fx", rep.DispatchSpeedup, minSpeedup))
	}

	// Schema 3 added the observability section: always-on compiled
	// profiling must stay within the overhead budget.
	if rep.Schema >= 3 {
		if len(rep.Observability) == 0 {
			msgs = append(msgs, "observability section is empty (schema ≥ 3 requires it)")
		} else if rep.ProfilingOverheadPct > maxProfOverhead {
			msgs = append(msgs, fmt.Sprintf(
				"profiling_overhead_pct %.1f%% above ceiling %.1f%%",
				rep.ProfilingOverheadPct, maxProfOverhead))
		}
	}

	// Schema 4 added the lock-free scaling ladder: the widest rung must
	// beat one goroutine by the core-aware floor.
	if rep.Schema >= 4 {
		if len(rep.DispatchScaling) == 0 {
			msgs = append(msgs, "dispatch_scaling section is empty (schema ≥ 4 requires it)")
		} else if rep.GOMAXPROCS < 1 {
			msgs = append(msgs, fmt.Sprintf("gomaxprocs %d is implausible", rep.GOMAXPROCS))
		} else {
			widest := 0
			for _, r := range rep.DispatchScaling {
				if r.Goroutines > widest {
					widest = r.Goroutines
				}
			}
			floor := parallelFloor(minParallel, widest, rep.GOMAXPROCS)
			if rep.ParallelSpeedup < floor {
				msgs = append(msgs, fmt.Sprintf(
					"parallel_speedup %.2fx below floor %.2fx (flag %.2fx, %d goroutines, gomaxprocs %d)",
					rep.ParallelSpeedup, floor, minParallel, widest, rep.GOMAXPROCS))
			}
		}
	}

	// Schema 5 added the certificate-cost baseline and the windowed
	// observability configuration.
	if rep.Schema >= 5 {
		if len(rep.CertCost) == 0 {
			msgs = append(msgs, "cert_cost section is empty (schema ≥ 5 requires it)")
		}
		for _, c := range rep.CertCost {
			if c.ProofBytes <= 0 || c.VCNodes <= 0 {
				msgs = append(msgs, fmt.Sprintf(
					"cert_cost %s: implausible sizes (proof_bytes %d, vc_nodes %d)",
					c.Filter, c.ProofBytes, c.VCNodes))
			}
		}
		windowed := false
		for _, o := range rep.Observability {
			if o.Windowed {
				windowed = true
			}
		}
		if !windowed {
			msgs = append(msgs, "observability matrix lacks the windowed configuration (schema ≥ 5 requires it)")
		} else if rep.WindowOverheadPct > maxWinOverhead {
			msgs = append(msgs, fmt.Sprintf(
				"window_overhead_pct %.1f%% above ceiling %.1f%%",
				rep.WindowOverheadPct, maxWinOverhead))
		}
	}

	// Schema 6 added verified recovery: both cache configurations must
	// have replayed the whole journal, and the warm replay must beat the
	// cold one by the floor — the proof cache is the mechanism that
	// keeps reboot time bounded, so losing it is a regression.
	if rep.Schema >= 6 {
		seen := map[string]bool{}
		for _, r := range rep.Recovery {
			seen[r.Config] = true
			if r.Restored != r.Records || r.Records <= 0 {
				msgs = append(msgs, fmt.Sprintf(
					"recovery %s: restored %d of %d records — the benchmark journal must replay losslessly",
					r.Config, r.Restored, r.Records))
			}
		}
		if !seen["cold"] || !seen["warm"] {
			msgs = append(msgs, "recovery section lacks the cold/warm pair (schema ≥ 6 requires both)")
		} else if rep.WarmRecoverySpeedup < minWarmRecovery {
			msgs = append(msgs, fmt.Sprintf(
				"warm_recovery_speedup %.2fx below floor %.2fx",
				rep.WarmRecoverySpeedup, minWarmRecovery))
		}
	}
	return msgs
}

// parallelFloor is the effective parallel-speedup floor: the flag
// value, capped at 85% of the physically achievable ceiling
// min(goroutines, cores). The cap is what keeps the gate honest on
// narrow hosts — a single-core runner cannot show 3x parallelism, but
// it CAN show a lock convoy (speedup well below 1), which the capped
// floor of 0.85 still catches.
func parallelFloor(flag float64, goroutines, cores int) float64 {
	ceiling := goroutines
	if cores < ceiling {
		ceiling = cores
	}
	capped := 0.85 * float64(ceiling)
	if capped < flag {
		return capped
	}
	return flag
}
