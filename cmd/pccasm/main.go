// Command pccasm is the prototype certifying assembler of §3: it
// assembles a DEC Alpha subset source file, computes its safety
// predicate under a published policy, proves it, and writes a PCC
// binary.
//
// Usage:
//
//	pccasm -policy packet-filter/v1 -o filter.pcc filter.s
//	pccasm -builtin filter4 -o filter4.pcc
//	pccasm -builtin checksum -o checksum.pcc   (includes the loop invariant)
//
// Loop invariants cannot be written in assembly source; the -builtin
// programs carry theirs programmatically, exactly as the paper's PCC
// binaries carried an invariant table.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	pcc "repro"
	"repro/internal/alpha"
	"repro/internal/filters"
	"repro/internal/logic"
	"repro/internal/policy"
	"repro/internal/prover"
	"repro/internal/sfi"
	"repro/internal/vcgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pccasm: ")
	polName := flag.String("policy", "packet-filter/v1", "safety policy name")
	polFile := flag.String("policy-file", "", "load the safety policy from a file (overrides -policy)")
	out := flag.String("o", "a.pcc", "output PCC binary")
	builtin := flag.String("builtin", "", "certify a built-in program: filter1..filter4, checksum, resource-access")
	verbose := flag.Bool("v", false, "print certification statistics")
	dumpVC := flag.Bool("dump-vc", false, "print the per-instruction verification conditions")
	dumpProof := flag.Bool("dump-proof", false, "print the safety proof as a Figure 6-style tree")
	autoInv := flag.Bool("auto-inv", false, "infer loop invariants automatically (counted-loop idiom)")
	sfiMode := flag.Bool("sfi", false, "apply SFI rewriting first and certify under sfi-segment/v1 (the §3.1 hybrid)")
	invariants := map[string]logic.Pred{}
	flag.Func("inv", "loop invariant as label=predicate (repeatable)", func(s string) error {
		label, src, ok := strings.Cut(s, "=")
		if !ok {
			return fmt.Errorf("expected label=predicate")
		}
		p, err := logic.ParsePred(src)
		if err != nil {
			return err
		}
		invariants[strings.TrimSpace(label)] = p
		return nil
	})
	flag.Parse()

	var src string
	switch {
	case *builtin != "":
		var err error
		var builtinInv map[string]logic.Pred
		src, builtinInv, err = builtinProgram(*builtin, polName)
		if err != nil {
			log.Fatal(err)
		}
		for k, v := range builtinInv {
			invariants[k] = v
		}
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		src = string(data)
	default:
		log.Fatal("expected exactly one source file or -builtin")
	}

	var pol *policy.Policy
	var err error
	if *polFile != "" {
		data, err := os.ReadFile(*polFile)
		if err != nil {
			log.Fatal(err)
		}
		pol, err = policy.Parse(string(data))
		if err != nil {
			log.Fatal(err)
		}
	} else if pol, err = policy.ByName(*polName); err != nil {
		log.Fatal(err)
	}
	if len(invariants) == 0 {
		invariants = nil
	}
	if *dumpVC {
		if err := dumpVCs(src, pol, invariants); err != nil {
			log.Fatal(err)
		}
	}

	var cert *pcc.CertResult
	switch {
	case *sfiMode:
		asm, aerr := alpha.Assemble(src)
		if aerr != nil {
			log.Fatal(aerr)
		}
		rw, rerr := sfi.Rewrite(asm.Prog)
		if rerr != nil {
			log.Fatal(rerr)
		}
		if verr := sfi.Validate(rw); verr != nil {
			log.Fatalf("sfi self-check failed: %v", verr)
		}
		pol, err = policy.ByName("sfi-segment/v1")
		if err != nil {
			log.Fatal(err)
		}
		cert, err = pcc.CertifyProgram(rw, pol, nil)
	case *autoInv && len(invariants) == 0:
		cert, err = pcc.CertifyAuto(src, pol)
	default:
		cert, err = pcc.Certify(src, pol, invariants)
	}
	if err != nil {
		log.Fatal(err)
	}
	if *dumpProof {
		proof, err := prover.Prove(cert.SafetyPredicate)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("safety proof (Figure 6 style):")
		fmt.Print(prover.Format(prover.Simplify(proof)))
		fmt.Println()
	}
	if err := os.WriteFile(*out, cert.Binary, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s: %d bytes (%d instructions, policy %s)\n",
		*out, len(cert.Binary), cert.Instructions, pol.Name)
	if *verbose {
		fmt.Printf("  layout:      %s\n", cert.Layout)
		fmt.Printf("  proof:       %d nodes (%d LF nodes)\n", cert.ProofNodes, cert.LFNodes)
		fmt.Printf("  prove time:  %s\n", cert.ProveTime)
	}
}

// dumpVCs prints each instruction next to its Figure 4 verification
// condition, the most direct window into how the safety predicate is
// built.
func dumpVCs(src string, pol *policy.Policy, invariants map[string]logic.Pred) error {
	asm, err := alpha.Assemble(src)
	if err != nil {
		return err
	}
	invByPC := map[int]logic.Pred{}
	for label, inv := range invariants {
		pc, ok := asm.Labels[label]
		if !ok {
			return fmt.Errorf("invariant for unknown label %q", label)
		}
		invByPC[pc] = inv
	}
	res, err := vcgen.Gen(asm.Prog, pol.Pre, pol.Post, invByPC)
	if err != nil {
		return err
	}
	fmt.Println("verification conditions (Figure 4):")
	for pc, ins := range asm.Prog {
		fmt.Printf("%3d: %-24s VC = %s\n", pc, ins.String(), res.VCs[pc])
	}
	fmt.Println("\nobligations:")
	for _, ob := range res.Obligations {
		fmt.Printf("  at pc %d: %s\n        => %s\n", ob.PC, ob.Assume, ob.VC)
	}
	fmt.Println()
	return nil
}

func builtinProgram(name string, polName *string) (string, map[string]logic.Pred, error) {
	switch name {
	case "filter1":
		return filters.Source(filters.Filter1), nil, nil
	case "filter2":
		return filters.Source(filters.Filter2), nil, nil
	case "filter3":
		return filters.Source(filters.Filter3), nil, nil
	case "filter4":
		return filters.Source(filters.Filter4), nil, nil
	case "checksum":
		return filters.SrcChecksum,
			map[string]logic.Pred{"loop": filters.ChecksumInvariant()}, nil
	case "resource-access":
		*polName = "resource-access/v1"
		return `
        ADDQ  r0, 8, r1
        LDQ   r0, 8(r0)
        LDQ   r2, -8(r1)
        ADDQ  r0, 1, r0
        BEQ   r2, L1
        STQ   r0, 0(r1)
L1:     RET
`, nil, nil
	}
	return "", nil, fmt.Errorf("unknown builtin %q", name)
}
