// Command pccdump inspects a PCC binary: sections and sizes (the
// Figure 7 view), the disassembled native code, the relocation symbol
// table, the invariant table, and proof statistics.
//
// Usage:
//
//	pccdump [-code] [-symbols] [-proof] filter.pcc
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/alpha"
	"repro/internal/lf"
	"repro/internal/pccbin"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pccdump: ")
	showCode := flag.Bool("code", true, "disassemble the native code section")
	showSyms := flag.Bool("symbols", false, "print the relocation symbol table")
	showProof := flag.Bool("proof", false, "print the LF proof term")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("expected exactly one PCC binary")
	}

	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	bin, err := pccbin.Unmarshal(data)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("PCC binary %s (%d bytes)\n", flag.Arg(0), len(data))
	fmt.Printf("  policy:      %s\n", bin.PolicyName)
	fmt.Printf("  code:        %d bytes (%d instructions)\n", len(bin.Code), len(bin.Code)/4)
	fmt.Printf("  symbols:     %d\n", len(bin.Symbols))
	fmt.Printf("  invariants:  %d\n", len(bin.Invariants))
	// Bounded walk: the dump target is an untrusted file, and a
	// hash-consed DAG proof expands exponentially under traversal.
	fmt.Printf("  proof:       %d LF nodes\n", lf.SizeBounded(bin.Proof, 1<<22))

	if *showCode {
		prog, err := alpha.Decode(bin.Code)
		if err != nil {
			log.Fatalf("native code does not decode: %v", err)
		}
		fmt.Println("\nnative code:")
		fmt.Print(alpha.Program(prog))
	}
	if *showSyms {
		fmt.Println("\nrelocation symbols:")
		for i, s := range bin.Symbols {
			fmt.Printf("  %3d %s\n", i, s)
		}
	}
	if len(bin.Invariants) > 0 {
		fmt.Println("\ninvariant table:")
		for _, inv := range bin.Invariants {
			p, err := lf.DecodePred(inv.Pred)
			if err != nil {
				log.Fatalf("invariant at pc %d does not decode: %v", inv.PC, err)
			}
			fmt.Printf("  pc %3d: %s\n", inv.PC, p)
		}
	}
	if *showProof {
		fmt.Println("\nproof term:")
		fmt.Println(bin.Proof)
	}
}
