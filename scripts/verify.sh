#!/bin/sh
# verify.sh — the one entry point future PRs run before shipping:
# build, vet, the full test suite under the race detector (the
# concurrent validation pipeline must stay -race clean), a smoke pass
# over the seed fuzz corpora, and a telemetry smoke that checks the
# metrics exposition contract pccmon -telemetry promises.
set -eu
cd "$(dirname "$0")/.."

echo '== go build ./...'
go build ./...

echo '== go vet ./...'
go vet ./...

# The telemetry, kernel, and machine packages lean on sync/atomic and
# carry lock-free invariants (the profiler hot path merges pooled
# scratch profiles into per-filter atomic accumulators); run the
# atomic and copylocks analyzers on them explicitly (the shadow
# analyzer lives in an external module, so it is not part of this
# gate).
echo '== go vet -atomic -copylocks (telemetry, kernel, machine)'
go vet -atomic -copylocks ./internal/telemetry/ ./internal/kernel/ ./internal/machine/

echo '== go test -race ./...'
go test -race ./...

# The kernel's dispatch path is lock-free (epoch-pinned snapshot
# reads, per-shard counters); rerun its suite under the race detector
# at 1 and 4 schedulers so the torn-snapshot and reclamation tests see
# both a serialized and a genuinely parallel interleaving.
echo '== go test -race -cpu=1,4 ./internal/kernel/'
go test -race -cpu=1,4 ./internal/kernel/

echo '== fuzz corpora smoke (seed corpora replay)'
go test -run=Fuzz ./...

# Engage the native fuzzing engine briefly on the two untrusted-input
# parsers and on the backend-differential target (random programs
# through interpreter and compiled backend must agree; one package per
# -fuzz invocation; -run='^$' skips the unit tests already covered
# above).
echo '== native fuzz smoke (5s per target)'
go test -fuzz=FuzzDecodeBinary -fuzztime=5s -run='^$' ./internal/pccbin/
go test -fuzz=FuzzLFParse -fuzztime=5s -run='^$' ./internal/lf/
go test -fuzz=FuzzCompiledDispatch -fuzztime=5s -run='^$' ./internal/machine/

echo '== telemetry smoke (pccmon -telemetry exposition contract)'
out=$(go run ./cmd/pccmon -packets 2000 -telemetry)
for metric in \
	pcc_install_installed_total \
	pcc_install_rejected_total \
	pcc_cache_hits_total \
	pcc_cache_misses_total \
	pcc_cache_evictions_total \
	pcc_packets_total \
	pcc_filters_installed \
	pcc_stage_vcgen_seconds_count \
	pcc_stage_lfcheck_seconds_count \
	pcc_stage_wcet_seconds_count \
	pcc_stage_commit_seconds_count \
	pcc_stage_dispatch_seconds_count \
	pcc_trace_events_total \
	pcc_trace_dropped_total
do
	if ! printf '%s' "$out" | grep -q "$metric"; then
		echo "telemetry smoke: missing metric $metric" >&2
		exit 1
	fi
done

echo '== serve smoke (pccmon -serve endpoints)'
go build -o /tmp/pccmon.verify ./cmd/pccmon
/tmp/pccmon.verify -serve 127.0.0.1:16996 -pps 500 -audit-out /tmp/pccmon.audit.jsonl &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true' EXIT
# Wait for the listener, then hit the surfaces.
ok=
for _ in $(seq 1 50); do
	if curl -fsS http://127.0.0.1:16996/healthz >/dev/null 2>&1; then
		ok=1
		break
	fi
	sleep 0.1
done
if [ -z "$ok" ]; then
	echo "serve smoke: /healthz never came up" >&2
	exit 1
fi
curl -fsS http://127.0.0.1:16996/metrics | grep -c pcc_filter_cycles_total >/dev/null ||
	{ echo "serve smoke: /metrics missing per-filter cycles" >&2; exit 1; }
curl -fsS http://127.0.0.1:16996/metrics | grep -c pcc_quarantined_owners >/dev/null ||
	{ echo "serve smoke: /metrics missing quarantine gauge" >&2; exit 1; }
curl -fsS http://127.0.0.1:16996/debug/vars | grep -c quarantined >/dev/null ||
	{ echo "serve smoke: /debug/vars missing quarantined set" >&2; exit 1; }
curl -fsS 'http://127.0.0.1:16996/profile/Filter%201' | grep -c RET >/dev/null ||
	{ echo "serve smoke: /profile/Filter 1 has no listing" >&2; exit 1; }
curl -fsS http://127.0.0.1:16996/debug/vars | grep -c traffic_packets >/dev/null ||
	{ echo "serve smoke: /debug/vars missing traffic counters" >&2; exit 1; }
# Always-on hot-path observability: the batch dispatcher feeds the
# per-owner latency family with log-scale sub-µs buckets, and the
# flight recorder serves its anomaly ring (at minimum the boot config
# changes) as JSON.
curl -fsS http://127.0.0.1:16996/metrics | grep -c pcc_filter_run_seconds_bucket >/dev/null ||
	{ echo "serve smoke: /metrics missing per-filter latency family" >&2; exit 1; }
curl -fsS http://127.0.0.1:16996/metrics | grep -c 'pcc_stage_dispatch_batch_seconds_bucket{le="5e-08"' >/dev/null ||
	{ echo "serve smoke: /metrics dispatch-batch histogram has no sub-µs buckets" >&2; exit 1; }
curl -fsS http://127.0.0.1:16996/debug/flightrecorder | grep -c '"events"' >/dev/null ||
	{ echo "serve smoke: /debug/flightrecorder serves no events document" >&2; exit 1; }
curl -fsS http://127.0.0.1:16996/debug/flightrecorder | grep -c config_change >/dev/null ||
	{ echo "serve smoke: flight recorder missing boot config changes" >&2; exit 1; }
# Graceful shutdown: SIGTERM must end the process with exit 0.
kill "$serve_pid"
if ! wait "$serve_pid"; then
	echo "serve smoke: pccmon -serve did not exit cleanly" >&2
	exit 1
fi
trap - EXIT
grep -q '"event":"install"' /tmp/pccmon.audit.jsonl ||
	{ echo "serve smoke: audit log recorded no installs" >&2; exit 1; }
grep -q '"event":"config"' /tmp/pccmon.audit.jsonl ||
	{ echo "serve smoke: audit log recorded no config changes" >&2; exit 1; }
rm -f /tmp/pccmon.audit.jsonl

# Multi-tenant serve smoke: two isolated kernels behind one listener,
# per-tenant routing under /t/{name}/, the /tenants index, the legacy
# bare paths still serving the default tenant, and per-tenant packet
# accounting that reconciles (the pump counts a batch only after the
# kernel delivered it, so kernel packets ≥ traffic packets, per
# tenant).
echo '== multi-tenant serve smoke (pccmon -serve -tenants alpha,beta)'
/tmp/pccmon.verify -serve 127.0.0.1:16997 -pps 500 -tenants alpha,beta \
	-audit-out /tmp/pccmon.mt.audit.jsonl &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true' EXIT
ok=
for _ in $(seq 1 50); do
	if curl -fsS http://127.0.0.1:16997/healthz >/dev/null 2>&1; then
		ok=1
		break
	fi
	sleep 0.1
done
[ -n "$ok" ] || { echo "multi-tenant smoke: /healthz never came up" >&2; exit 1; }
curl -fsS http://127.0.0.1:16997/tenants | grep -q '"default": "alpha"' ||
	{ echo "multi-tenant smoke: /tenants missing the default marker" >&2; exit 1; }
curl -fsS http://127.0.0.1:16997/tenants | grep -q '"/t/beta/"' ||
	{ echo "multi-tenant smoke: /tenants missing beta's prefix" >&2; exit 1; }
# Wait for both pumps to move traffic, then reconcile alpha's counters
# from one /t/alpha/debug/vars document.
tp=0
for _ in $(seq 1 50); do
	vars=$(curl -fsS http://127.0.0.1:16997/t/alpha/debug/vars)
	tp=$(printf '%s' "$vars" | grep -m1 '"traffic_packets"' | tr -dc 0-9)
	[ "${tp:-0}" -gt 0 ] && break
	sleep 0.1
done
[ "${tp:-0}" -gt 0 ] || { echo "multi-tenant smoke: alpha's pump moved no traffic" >&2; exit 1; }
kp=$(printf '%s' "$vars" | grep -m1 '"Packets"' | tr -dc 0-9)
[ "${kp:-0}" -ge "$tp" ] ||
	{ echo "multi-tenant smoke: alpha kernel packets $kp < traffic $tp" >&2; exit 1; }
curl -fsS http://127.0.0.1:16997/t/beta/debug/vars | grep -q '"tenant": "beta"' ||
	{ echo "multi-tenant smoke: /t/beta/debug/vars not tagged beta" >&2; exit 1; }
curl -fsS http://127.0.0.1:16997/t/beta/metrics | grep -q pcc_filter_run_seconds_bucket ||
	{ echo "multi-tenant smoke: /t/beta/metrics missing the latency family" >&2; exit 1; }
curl -fsS http://127.0.0.1:16997/debug/vars | grep -q '"tenant": "alpha"' ||
	{ echo "multi-tenant smoke: bare /debug/vars is not the default tenant" >&2; exit 1; }
if curl -fsS http://127.0.0.1:16997/t/nope/healthz >/dev/null 2>&1; then
	echo "multi-tenant smoke: unknown tenant did not 404" >&2
	exit 1
fi
# Correlated timeline: the three observability streams join on one
# EventID. The boot SetBackend config change lands in all three by
# construction (a config span, a "config" audit record, and a
# "config_change" flight event on the same ID), so pull its EventID
# from alpha's stage-filtered timeline and ask for everything about
# that one ID.
eid=$(curl -fsS 'http://127.0.0.1:16997/t/alpha/debug/timeline?stage=config&kind=config_change' |
	sed -n 's/.*"event": \([0-9][0-9]*\),*$/\1/p' | head -n 1)
[ "${eid:-0}" -gt 0 ] ||
	{ echo "timeline smoke: no config-change EventID in alpha's timeline" >&2; exit 1; }
joined=$(curl -fsS "http://127.0.0.1:16997/t/alpha/debug/timeline?id=$eid")
printf '%s' "$joined" | grep -q '"stage": "config"' ||
	{ echo "timeline smoke: id=$eid join has no config span" >&2; exit 1; }
printf '%s' "$joined" | grep -q '"kind": "config"' ||
	{ echo "timeline smoke: id=$eid join has no config audit record" >&2; exit 1; }
printf '%s' "$joined" | grep -q '"kind": "config_change"' ||
	{ echo "timeline smoke: id=$eid join has no config_change flight event" >&2; exit 1; }
# Tenant isolation: beta's timeline must know nothing about alpha's ID.
curl -fsS "http://127.0.0.1:16997/t/beta/debug/timeline?id=$eid" |
	grep -q '"event": '"$eid" &&
	{ echo "timeline smoke: alpha's EventID $eid leaked into beta's timeline" >&2; exit 1; }
# Live watch: two bounded refreshes of the server-side windowed rates.
/tmp/pccmon.verify -watch 127.0.0.1:16997/t/alpha -watch-interval 200ms -watch-count 2 \
	>/tmp/pccmon.watch.out ||
	{ echo "watch smoke: pccmon -watch failed" >&2; exit 1; }
grep -q 'packets/s' /tmp/pccmon.watch.out ||
	{ echo "watch smoke: no windowed rates in the output" >&2; exit 1; }
grep -q 'tenant alpha' /tmp/pccmon.watch.out ||
	{ echo "watch smoke: output not tagged with the tenant" >&2; exit 1; }
rm -f /tmp/pccmon.watch.out
kill "$serve_pid"
if ! wait "$serve_pid"; then
	echo "multi-tenant smoke: pccmon -serve did not exit cleanly" >&2
	exit 1
fi
trap - EXIT
grep -q '"tenant":"alpha"' /tmp/pccmon.mt.audit.jsonl ||
	{ echo "multi-tenant smoke: audit log has no alpha-tagged records" >&2; exit 1; }
grep -q '"tenant":"beta"' /tmp/pccmon.mt.audit.jsonl ||
	{ echo "multi-tenant smoke: audit log has no beta-tagged records" >&2; exit 1; }
rm -f /tmp/pccmon.verify /tmp/pccmon.mt.audit.jsonl

# Crash-recovery smoke: the durability contract end to end through the
# operator-facing binaries. Boot a serving monitor with a durable
# store, install a filter over HTTP (the ack means the journal record
# is fsynced), kill -9 the process, and reboot on the same store: the
# install must come back — re-proved, not trusted. Then flip one proof
# byte in its journal record on disk and reboot again: recovery must
# refuse it and say so in the audit log.
echo '== crash-recovery smoke (pccmon -serve -store, kill -9, reboot)'
go build -o /tmp/pccmon.crash ./cmd/pccmon
go build -o /tmp/pccload.crash ./cmd/pccload
crashstore=$(mktemp -d)
go run ./cmd/pccasm -builtin filter4 -o /tmp/verify.crash.pcc >/dev/null
/tmp/pccmon.crash -serve 127.0.0.1:16998 -pps 200 -store "$crashstore" \
	-audit-out /tmp/pccmon.crash.audit.jsonl &
serve_pid=$!
trap 'kill -9 "$serve_pid" 2>/dev/null || true; rm -rf "$crashstore"' EXIT
ok=
for _ in $(seq 1 50); do
	if curl -fsS http://127.0.0.1:16998/healthz >/dev/null 2>&1; then
		ok=1
		break
	fi
	sleep 0.1
done
[ -n "$ok" ] || { echo "crash smoke: /healthz never came up" >&2; exit 1; }
/tmp/pccload.crash -install-url http://127.0.0.1:16998 -owner crashtest \
	/tmp/verify.crash.pcc ||
	{ echo "crash smoke: remote install failed" >&2; exit 1; }
curl -fsS http://127.0.0.1:16998/debug/vars | grep -q '"crashtest"' ||
	{ echo "crash smoke: crashtest not in the owner set after install" >&2; exit 1; }
# The ack above implies durability: a kill -9 right now must not lose it.
kill -9 "$serve_pid"
wait "$serve_pid" 2>/dev/null || true
/tmp/pccmon.crash -serve 127.0.0.1:16998 -pps 200 -store "$crashstore" \
	-audit-out /tmp/pccmon.crash.audit2.jsonl &
serve_pid=$!
ok=
for _ in $(seq 1 50); do
	if curl -fsS http://127.0.0.1:16998/healthz >/dev/null 2>&1; then
		ok=1
		break
	fi
	sleep 0.1
done
[ -n "$ok" ] || { echo "crash smoke: reboot /healthz never came up" >&2; exit 1; }
curl -fsS http://127.0.0.1:16998/debug/vars | grep -q '"crashtest"' ||
	{ echo "crash smoke: kill -9 lost the acked-durable install" >&2; exit 1; }
# Graceful shutdown drains in-flight installs, then closes the store.
kill "$serve_pid"
if ! wait "$serve_pid"; then
	echo "crash smoke: pccmon -serve did not exit cleanly" >&2
	exit 1
fi
# The disk is untrusted: flip one proof byte of crashtest's journal
# record (the 4 boot filters occupy records 0..3, so the remote
# install is record 4) and forge the frame CRC so only re-validation
# can catch it.
/tmp/pccload.crash -tamper-store "$crashstore/default" -tamper-index 4 \
	| grep -q crashtest ||
	{ echo "crash smoke: tamper did not hit the crashtest record" >&2; exit 1; }
/tmp/pccmon.crash -serve 127.0.0.1:16998 -pps 200 -store "$crashstore" \
	-audit-out /tmp/pccmon.crash.audit3.jsonl &
serve_pid=$!
ok=
for _ in $(seq 1 50); do
	if curl -fsS http://127.0.0.1:16998/healthz >/dev/null 2>&1; then
		ok=1
		break
	fi
	sleep 0.1
done
[ -n "$ok" ] || { echo "crash smoke: post-tamper /healthz never came up" >&2; exit 1; }
curl -fsS http://127.0.0.1:16998/debug/vars | grep -q '"crashtest"' &&
	{ echo "crash smoke: recovery admitted a tampered binary" >&2; exit 1; }
kill "$serve_pid"
if ! wait "$serve_pid"; then
	echo "crash smoke: post-tamper pccmon -serve did not exit cleanly" >&2
	exit 1
fi
trap - EXIT
grep -q '"event":"recovery_skip"' /tmp/pccmon.crash.audit3.jsonl ||
	{ echo "crash smoke: tampered record's skip was not audited" >&2; exit 1; }
rm -rf "$crashstore"
rm -f /tmp/pccmon.crash /tmp/pccload.crash /tmp/verify.crash.pcc \
	/tmp/pccmon.crash.audit.jsonl /tmp/pccmon.crash.audit2.jsonl \
	/tmp/pccmon.crash.audit3.jsonl

# Adversarial smoke: 2,000 mutated binaries through the validator must
# produce zero escaped panics and zero unsound accepts (the 10,000-trial
# version runs under -race in the test suite above; this one proves the
# operator-facing entry point works).
echo '== chaos smoke (pccload -chaos 2000)'
go run ./cmd/pccload -chaos 2000 -chaos-seed 1996

# Store chaos smoke: 2,000 damaged journals (plus the kill-at-every-
# frame-boundary sweep) through verified recovery must produce zero
# unsound accepts, zero lost intact acked installs, and no hangs.
echo '== store chaos smoke (pccload -chaos-store 2000)'
go run ./cmd/pccload -chaos-store 2000 -chaos-seed 1996

# Deadline smoke: a validation under an already-expired deadline must be
# a typed rejection — fast, no proof checking, no hang.
echo '== deadline smoke (pccload -deadline 1ns)'
go run ./cmd/pccasm -builtin filter4 -o /tmp/verify.f4.pcc >/dev/null
if out=$(go run ./cmd/pccload -deadline 1ns /tmp/verify.f4.pcc 2>&1); then
	echo "deadline smoke: expired deadline did not reject: $out" >&2
	exit 1
fi
printf '%s' "$out" | grep -q 'deadline' ||
	{ echo "deadline smoke: rejection not deadline-classed: $out" >&2; exit 1; }
# The same binary with no deadline still validates (the gate rejects on
# time, not on content).
go run ./cmd/pccload /tmp/verify.f4.pcc >/dev/null
rm -f /tmp/verify.f4.pcc

# Backend-differential smoke: the paper corpus through both dispatch
# backends over a 1,000-packet trace, every verdict cross-checked
# against the reference semantics. Exits nonzero on any divergence.
echo '== backend differential smoke (pccload -diff-backends 1000)'
go run ./cmd/pccload -diff-backends 1000

# Scaling smoke: 8 goroutines sharing one lock-free kernel; the accept
# census must match the reference semantics exactly (a torn snapshot
# or a lost shard increment exits nonzero).
echo '== dispatch scaling smoke (pccload -scale 8)'
go run ./cmd/pccload -scale 8 -packets 20000

# Dispatch-performance regression gate, opt-in (it re-measures host
# wall-clock throughput, which takes a minute and wants a quiet host).
if [ "${BENCHCHECK:-0}" = "1" ]; then
	echo '== bench regression gate (BENCHCHECK=1)'
	sh scripts/benchcheck.sh
fi

echo 'verify: OK'
