#!/bin/sh
# verify.sh — the one entry point future PRs run before shipping:
# build, vet, the full test suite under the race detector (the
# concurrent validation pipeline must stay -race clean), and a smoke
# pass over the seed fuzz corpora.
set -eu
cd "$(dirname "$0")/.."

echo '== go build ./...'
go build ./...

echo '== go vet ./...'
go vet ./...

echo '== go test -race ./...'
go test -race ./...

echo '== fuzz corpora smoke (go test -run=Fuzz -fuzztime=10s)'
go test -run=Fuzz -fuzztime=10s ./...

echo 'verify: OK'
