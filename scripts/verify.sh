#!/bin/sh
# verify.sh — the one entry point future PRs run before shipping:
# build, vet, the full test suite under the race detector (the
# concurrent validation pipeline must stay -race clean), a smoke pass
# over the seed fuzz corpora, and a telemetry smoke that checks the
# metrics exposition contract pccmon -telemetry promises.
set -eu
cd "$(dirname "$0")/.."

echo '== go build ./...'
go build ./...

echo '== go vet ./...'
go vet ./...

# The telemetry and kernel packages lean on sync/atomic and carry
# lock-free invariants; run the atomic and copylocks analyzers on them
# explicitly (the shadow analyzer lives in an external module, so it is
# not part of this gate).
echo '== go vet -atomic -copylocks (telemetry, kernel)'
go vet -atomic -copylocks ./internal/telemetry/ ./internal/kernel/

echo '== go test -race ./...'
go test -race ./...

echo '== fuzz corpora smoke (go test -run=Fuzz -fuzztime=10s)'
go test -run=Fuzz -fuzztime=10s ./...

echo '== telemetry smoke (pccmon -telemetry exposition contract)'
out=$(go run ./cmd/pccmon -packets 2000 -telemetry)
for metric in \
	pcc_install_installed_total \
	pcc_install_rejected_total \
	pcc_cache_hits_total \
	pcc_cache_misses_total \
	pcc_cache_evictions_total \
	pcc_packets_total \
	pcc_filters_installed \
	pcc_stage_vcgen_seconds_count \
	pcc_stage_lfcheck_seconds_count \
	pcc_stage_wcet_seconds_count \
	pcc_stage_commit_seconds_count \
	pcc_stage_dispatch_seconds_count \
	pcc_trace_events_total \
	pcc_trace_dropped_total
do
	if ! printf '%s' "$out" | grep -q "$metric"; then
		echo "telemetry smoke: missing metric $metric" >&2
		exit 1
	fi
done

echo 'verify: OK'
