#!/bin/sh
# benchcheck.sh — dispatch-performance regression gate (opt-in:
# BENCHCHECK=1 make verify, or run directly). Two passes:
#
#   1. the newest committed BENCH_*.json must satisfy the gate — the
#      recorded perf trajectory never regresses silently;
#   2. a fresh paperbench -json measurement on this host must too —
#      the current tree still delivers a compiled backend that beats
#      the interpreter on every shape.
#
# The fresh pass uses a relaxed speedup floor (host wall-clock on a
# loaded or frequency-scaled machine is noisy; the per-shape
# compiled-not-slower-than-interp ordering is the hard invariant).
set -eu
cd "$(dirname "$0")/.."

MIN_SPEEDUP_COMMITTED=${MIN_SPEEDUP_COMMITTED:-5.0}
MIN_SPEEDUP_FRESH=${MIN_SPEEDUP_FRESH:-2.0}
# Always-on profiling overhead ceilings (percent of unprofiled
# compiled throughput, schema ≥ 3 reports): the committed baseline
# holds the documented 15% budget; the fresh pass gets headroom for
# host noise.
MAX_PROF_OVERHEAD_COMMITTED=${MAX_PROF_OVERHEAD_COMMITTED:-15.0}
MAX_PROF_OVERHEAD_FRESH=${MAX_PROF_OVERHEAD_FRESH:-30.0}
# Multi-goroutine scaling floors (schema ≥ 4 reports): benchcheck caps
# the effective floor at 85% of min(goroutines, report's gomaxprocs),
# so 3.0 demands real parallelism on wide hosts and degrades to the
# no-lock-convoy check (~0.85) on single-core runners.
MIN_PARALLEL_COMMITTED=${MIN_PARALLEL_COMMITTED:-3.0}
MIN_PARALLEL_FRESH=${MIN_PARALLEL_FRESH:-3.0}
# Sliding-window recorder overhead ceilings (percent of the
# plain-recorder observed posture's throughput, schema ≥ 5 reports):
# the window layer is a handful of atomics per observation, so the
# committed baseline holds a tight budget; the fresh pass gets
# headroom for host noise.
MAX_WINDOW_OVERHEAD_COMMITTED=${MAX_WINDOW_OVERHEAD_COMMITTED:-20.0}
MAX_WINDOW_OVERHEAD_FRESH=${MAX_WINDOW_OVERHEAD_FRESH:-35.0}
# Verified-recovery floors (schema ≥ 6 reports): warm journal replay
# (content-addressed proof cache) over cold replay. The measured ratio
# is ~40x; 5.0 is the point below which the proof cache has stopped
# doing its job during reboot.
MIN_WARM_RECOVERY_COMMITTED=${MIN_WARM_RECOVERY_COMMITTED:-5.0}
MIN_WARM_RECOVERY_FRESH=${MIN_WARM_RECOVERY_FRESH:-5.0}

echo '== benchcheck: committed baseline'
committed=$(ls BENCH_*.json 2>/dev/null | sort | tail -n 1 || true)
if [ -z "$committed" ]; then
	echo "benchcheck: no committed BENCH_*.json baseline" >&2
	exit 1
fi
go run ./cmd/benchcheck -min-speedup "$MIN_SPEEDUP_COMMITTED" \
	-max-profiling-overhead "$MAX_PROF_OVERHEAD_COMMITTED" \
	-min-parallel-speedup "$MIN_PARALLEL_COMMITTED" \
	-max-window-overhead "$MAX_WINDOW_OVERHEAD_COMMITTED" \
	-min-warm-recovery-speedup "$MIN_WARM_RECOVERY_COMMITTED" "$committed"

echo '== benchcheck: fresh measurement (paperbench -json, 20k packets)'
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/paperbench" ./cmd/paperbench
go build -o "$tmp/benchcheck" ./cmd/benchcheck
(cd "$tmp" && ./paperbench -json -packets 20000 &&
	./benchcheck -min-speedup "$MIN_SPEEDUP_FRESH" \
		-max-profiling-overhead "$MAX_PROF_OVERHEAD_FRESH" \
		-min-parallel-speedup "$MIN_PARALLEL_FRESH" \
		-max-window-overhead "$MAX_WINDOW_OVERHEAD_FRESH" \
		-min-warm-recovery-speedup "$MIN_WARM_RECOVERY_FRESH")

echo 'benchcheck: OK'
