package pcc

// Tests for the §4 future-work features implemented beyond the paper's
// evaluation: nontrivial postconditions (the semaphore-release policy),
// run-time policy negotiation, and textual policy files.

import (
	"strings"
	"testing"

	"repro/internal/filters"
	"repro/internal/logic"
	"repro/internal/machine"
	"repro/internal/pccbin"
	"repro/internal/pktgen"
	"repro/internal/policy"
)

// A well-behaved locking client: acquire, update, release.
const lockOKSrc = `
        MOV   1, r4
        STQ   r4, 0(r0)     ; acquire the semaphore
        LDQ   r5, 8(r0)
        ADDQ  r5, 1, r5
        STQ   r5, 8(r0)     ; update the protected data
        CLR   r4
        STQ   r4, 0(r0)     ; release before returning
        RET
`

// A buggy client that forgets the release on one path.
const lockLeakSrc = `
        MOV   1, r4
        STQ   r4, 0(r0)     ; acquire
        LDQ   r5, 8(r0)
        BEQ   r5, out       ; zero payload: early return WITH THE LOCK HELD
        CLR   r4
        STQ   r4, 0(r0)     ; release
out:    RET
`

func TestSemaphorePolicyCertifiesCorrectClient(t *testing.T) {
	pol := policy.Semaphore()
	cert, err := Certify(lockOKSrc, pol, nil)
	if err != nil {
		t.Fatalf("correct locking client failed to certify: %v", err)
	}
	ext, _, err := Validate(cert.Binary, pol)
	if err != nil {
		t.Fatal(err)
	}
	mem := machine.NewMemory()
	entry := machine.NewRegion("entry", 0x1000, 16, true)
	entry.SetWord(8, 6)
	mem.MustAddRegion(entry)
	s := &machine.State{Mem: mem}
	s.R[0] = 0x1000
	if _, err := ext.RunChecked(s, 100); err != nil {
		t.Fatal(err)
	}
	if entry.Word(0) != 0 {
		t.Fatalf("semaphore held after return: %d", entry.Word(0))
	}
	if entry.Word(8) != 7 {
		t.Fatalf("data = %d, want 7", entry.Word(8))
	}
}

func TestSemaphorePolicyRejectsLockLeak(t *testing.T) {
	if _, err := Certify(lockLeakSrc, policy.Semaphore(), nil); err == nil {
		t.Fatal("lock-leaking client certified")
	}
	// The same program is perfectly memory-safe: it certifies under a
	// policy without the release postcondition — the leak is caught by
	// the postcondition alone.
	memOnly := &policy.Policy{
		Name: "semaphore-no-post/v1",
		Pre:  policy.Semaphore().Pre,
		Post: logic.True,
	}
	if _, err := Certify(lockLeakSrc, memOnly, nil); err != nil {
		t.Fatalf("lock leaker is memory-safe yet failed: %v", err)
	}
}

func TestNegotiateAcceptsWeakerPolicy(t *testing.T) {
	// A producer proposes a policy that assumes strictly less than the
	// packet-filter policy offers: read access to the first words only,
	// no scratch, no aliasing clause.
	base := PacketFilterPolicy()
	proposed := &policy.Policy{
		Name: "header-only/v1",
		Pre: logic.MustParsePred(
			"64 <= r2 /\\ (ALL i. (0 <= i /\\ i < r2 /\\ (i & 7) = 0) => rd(r1 + i))"),
		Post: logic.True,
	}
	if err := NegotiatePolicy(base, proposed); err != nil {
		t.Fatalf("weaker policy rejected: %v", err)
	}

	// And a binary certified under the negotiated policy validates.
	cert, err := Certify(`
        LDQ  r4, 8(r1)
        SLL  r4, 16, r4
        SRL  r4, 48, r4
        CMPEQ r4, 8, r0
        RET
	`, proposed, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Validate(cert.Binary, proposed); err != nil {
		t.Fatal(err)
	}
}

func TestNegotiateRejectsStrongerPolicy(t *testing.T) {
	// A proposal demanding write access to the packet must be refused:
	// the consumer cannot guarantee it.
	base := PacketFilterPolicy()
	greedy := &policy.Policy{
		Name: "writable-packet/v1",
		Pre:  logic.MustParsePred("wr(r1)"),
		Post: logic.True,
	}
	err := NegotiatePolicy(base, greedy)
	if err == nil {
		t.Fatal("policy demanding packet writes accepted")
	}
	if !strings.Contains(err.Error(), "precondition") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestNegotiateRejectsWeakerPostcondition(t *testing.T) {
	base := policy.Semaphore()
	sloppy := &policy.Policy{
		Name: "no-release/v1",
		Pre:  policy.Semaphore().Pre,
		Post: logic.True, // promises nothing about the lock
	}
	if err := NegotiatePolicy(base, sloppy); err == nil {
		t.Fatal("policy dropping the release obligation accepted")
	}
	// The reflexive case must hold.
	if err := NegotiatePolicy(base, base); err != nil {
		t.Fatalf("policy does not negotiate with itself: %v", err)
	}
}

func TestPolicyFileRoundTrip(t *testing.T) {
	for _, pol := range []*policy.Policy{
		PacketFilterPolicy(), ResourceAccessPolicy(), SFISegmentPolicy(), policy.Semaphore(),
	} {
		text := policy.Format(pol)
		back, err := policy.Parse(text)
		if err != nil {
			t.Fatalf("%s: %v\n%s", pol.Name, err, text)
		}
		if back.Name != pol.Name {
			t.Errorf("%s: name %q", pol.Name, back.Name)
		}
		if !logic.AlphaEqual(back.Pre, pol.Pre) {
			t.Errorf("%s: precondition changed:\n  in:  %s\n  out: %s",
				pol.Name, pol.Pre, back.Pre)
		}
		if !logic.AlphaEqual(back.Post, pol.Post) {
			t.Errorf("%s: postcondition changed", pol.Name)
		}
	}
}

func TestPolicyParseErrors(t *testing.T) {
	cases := []string{
		"",                                    // missing everything
		"pre: rd(r0)",                         // missing name
		"name: x/v1",                          // missing pre
		"name: x/v1\npre: rd(",                // bad predicate
		"name: x/v1\npre: rd(q9)",             // non-state variable
		"name: x/v1\nname: y/v1\npre: rd(r0)", // duplicate key
		"name: x/v1\nbogus: 3\npre: rd(r0)",   // unknown key
		"nonsense line",
	}
	for _, src := range cases {
		if _, err := policy.Parse(src); err == nil {
			t.Errorf("%q: parsed successfully", src)
		}
	}
}

func TestPolicyFileDrivesCertification(t *testing.T) {
	// A consumer publishing this file gets a working policy end to end.
	const file = `
# A read-only view of a single table entry.
name:       read-entry/v1
convention: r0 holds the entry address
pre:        rd(r0) /\ rd(r0 + 8)
post:       true
`
	pol, err := policy.Parse(file)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := Certify("LDQ r1, 0(r0)\nLDQ r0, 8(r0)\nRET", pol, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Validate(cert.Binary, pol); err != nil {
		t.Fatal(err)
	}
	// Writing is outside this policy.
	if _, err := Certify("STQ r1, 0(r0)\nRET", pol, nil); err == nil {
		t.Fatal("write certified under read-only policy")
	}
}

func TestSignatureFingerprintMismatchRejected(t *testing.T) {
	// A binary whose rule-set fingerprint differs from the consumer's
	// must be rejected before any proof checking (the producer built
	// its proof against different published rules).
	cert, err := Certify(lockOKSrc, policy.Semaphore(), nil)
	if err != nil {
		t.Fatal(err)
	}
	bin, err := pccbin.Unmarshal(cert.Binary)
	if err != nil {
		t.Fatal(err)
	}
	bin.SigHash ^= 0xdeadbeef
	data, _, err := bin.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = Validate(data, policy.Semaphore())
	if err == nil || !strings.Contains(err.Error(), "rule set") {
		t.Fatalf("fingerprint mismatch accepted: %v", err)
	}
}

func TestValidatedFiltersNeverTouchThePacket(t *testing.T) {
	// End-to-end immutability: run every validated filter UNCHECKED
	// over a trace and assert the packet region is bit-identical
	// afterwards — the promise that makes zero-run-time-check kernel
	// residency acceptable.
	pol := PacketFilterPolicy()
	pkts := pktgen.Generate(2000, pktgen.Config{Seed: 77})
	for _, f := range filters.All {
		cert, err := Certify(filters.Source(f), pol, nil)
		if err != nil {
			t.Fatal(err)
		}
		ext, _, err := Validate(cert.Binary, pol)
		if err != nil {
			t.Fatal(err)
		}
		env := filters.Env{}
		for i, p := range pkts {
			s := env.NewState(p.Data)
			before := append([]byte(nil), s.Mem.Region("packet").Bytes()...)
			if _, err := machine.Interp(ext.Prog, s, machine.Unchecked, nil, 1<<20); err != nil {
				t.Fatalf("%v pkt %d: %v", f, i, err)
			}
			after := s.Mem.Region("packet").Bytes()
			for j := range before {
				if before[j] != after[j] {
					t.Fatalf("%v pkt %d: packet byte %d mutated", f, i, j)
				}
			}
		}
	}
}

func TestDisjunctivePolicyCertifiesBranchingClient(t *testing.T) {
	// A §2-style policy with a disjunctive contract: the entry's data
	// word is writable, OR the tag is zero (read-only entry, and the
	// kernel promises nothing else). A client that only writes under a
	// tag≠0 test certifies: in the tag=0 case the write is never
	// reached, and the prover discharges the impossible branch by
	// contradiction.
	pol := &policy.Policy{
		Name: "maybe-writable/v1",
		Pre: logic.MustParsePred(
			"rd(r0) /\\ rd(r0 + 8) /\\ (wr(r0 + 8) \\/ sel(rm, r0) = 0)"),
		Post: logic.True,
	}
	good := `
        LDQ   r1, 0(r0)     ; tag
        BEQ   r1, skip      ; tag = 0: do not write
        LDQ   r2, 8(r0)
        ADDQ  r2, 1, r2
        STQ   r2, 8(r0)     ; reached only when tag ≠ 0
skip:   RET
`
	cert, err := Certify(good, pol, nil)
	if err != nil {
		t.Fatalf("guarded client failed under disjunctive policy: %v", err)
	}
	if _, _, err := Validate(cert.Binary, pol); err != nil {
		t.Fatal(err)
	}

	// The unguarded write must not certify: in the sel=0 case nothing
	// licenses it.
	bad := "LDQ r2, 8(r0)\nSTQ r2, 8(r0)\nRET"
	if _, err := Certify(bad, pol, nil); err == nil {
		t.Fatal("unguarded write certified under disjunctive policy")
	}
}

func TestPolicyFileWithAxioms(t *testing.T) {
	const file = `
name:       packet-filter-bor/v1
convention: like packet-filter/v1, plus OR-alignment reasoning
pre:        64 <= r2 /\ (ALL i. (i < r2 /\ (i & 7) = 0) => rd(r1 + i))
post:       true
axiom:      bor_align($a, $b, $m) : ($a & $m) = 0 ; ($b & $m) = 0 ;
            ($m & ($m + 1)) = 0 |- (($a | $b) & $m) = 0
`
	pol, err := policy.Parse(file)
	if err != nil {
		t.Fatal(err)
	}
	if len(pol.Axioms) != 1 || pol.Axioms[0].Name != "bor_align" {
		t.Fatalf("axioms = %+v", pol.Axioms)
	}
	if len(pol.Axioms[0].Prems) != 3 {
		t.Fatalf("premises = %d", len(pol.Axioms[0].Prems))
	}
	if err := VetAxioms(pol.Axioms, 20000); err != nil {
		t.Fatal(err)
	}

	// Round trip through Format.
	back, err := policy.Parse(policy.Format(pol))
	if err != nil {
		t.Fatalf("formatted policy does not re-parse: %v\n%s", err, policy.Format(pol))
	}
	if len(back.Axioms) != 1 || !logic.PredEqual(back.Axioms[0].Concl, pol.Axioms[0].Concl) {
		t.Fatal("axiom changed in round trip")
	}

	// And it certifies the OR-combined offset program end to end.
	src := `
        CLR    r0
        LDQ    r4, 0(r1)
        AND    r4, 32, r4
        BIS    r4, 8, r4
        CMPULT r4, r2, r5
        BEQ    r5, out
        ADDQ   r1, r6, r6     ; no-op shuffle to keep r6 live
        ADDQ   r1, r4, r6
        LDQ    r0, 0(r6)
out:    RET
`
	cert, err := Certify(src, pol, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Validate(cert.Binary, pol); err != nil {
		t.Fatal(err)
	}
}
