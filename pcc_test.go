package pcc

import (
	"strings"
	"testing"

	"repro/internal/filters"
	"repro/internal/logic"
	"repro/internal/machine"
	"repro/internal/policy"
)

const resourceSrc = `
        ADDQ  r0, 8, r1     % Address of data in r1
        LDQ   r0, 8(r0)     % Data in r0
        LDQ   r2, -8(r1)    % Tag in r2
        ADDQ  r0, 1, r0     % Increment data
        BEQ   r2, L1        % Skip if tag == 0
        STQ   r0, 0(r1)     % Write back data
L1:     RET
`

// tableState builds the §2 kernel table: a {tag, data} entry at 0x1000.
func tableState(tag, data uint64) *machine.State {
	mem := machine.NewMemory()
	r := machine.NewRegion("table", 0x1000, 16, true)
	r.SetWord(0, tag)
	r.SetWord(8, data)
	mem.MustAddRegion(r)
	s := &machine.State{Mem: mem}
	s.R[0] = 0x1000
	return s
}

func TestLifecycleResourceAccess(t *testing.T) {
	pol := ResourceAccessPolicy()
	cert, err := Certify(resourceSrc, pol, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cert.Instructions != 7 {
		t.Errorf("instructions = %d, want 7", cert.Instructions)
	}
	ext, stats, err := Validate(cert.Binary, pol)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Time <= 0 || stats.CheckSteps == 0 || stats.BinarySize != len(cert.Binary) {
		t.Errorf("bogus stats: %+v", stats)
	}

	// Writable entry: data increments.
	s := tableState(1, 41)
	if _, err := ext.Run(s, 100); err != nil {
		t.Fatal(err)
	}
	if got := s.Mem.Region("table").Word(8); got != 42 {
		t.Errorf("data = %d, want 42", got)
	}

	// Read-only entry (tag 0): data untouched.
	s = tableState(0, 41)
	if _, err := ext.Run(s, 100); err != nil {
		t.Fatal(err)
	}
	if got := s.Mem.Region("table").Word(8); got != 41 {
		t.Errorf("data = %d, want 41 (unchanged)", got)
	}
}

func TestValidatedExtensionNeverTripsChecks(t *testing.T) {
	// Safety Theorem 2.1: a certified program never blocks on the
	// abstract machine when started in a Pre-satisfying state.
	pol := ResourceAccessPolicy()
	cert, err := Certify(resourceSrc, pol, nil)
	if err != nil {
		t.Fatal(err)
	}
	ext, _, err := Validate(cert.Binary, pol)
	if err != nil {
		t.Fatal(err)
	}
	for _, tag := range []uint64{0, 1, 7, ^uint64(0)} {
		s := tableState(tag, 5)
		if _, err := ext.RunChecked(s, 100); err != nil {
			t.Errorf("tag %d: abstract machine blocked: %v", tag, err)
		}
	}
}

func TestTamperedCodeRejected(t *testing.T) {
	pol := ResourceAccessPolicy()
	cert, err := Certify(resourceSrc, pol, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Flip every byte of the native-code section in turn; each mutant
	// must be rejected (decode failure or proof/VC mismatch) OR still
	// certify a safe program (paper: "tampering can go undetected only
	// if the adulterated code still respects the policy").
	lay := cert.Layout
	accepted := 0
	for off := lay.CodeOff; off < lay.CodeOff+lay.CodeLen; off++ {
		mut := append([]byte(nil), cert.Binary...)
		mut[off] ^= 0x04
		if mut[off] == cert.Binary[off] {
			continue
		}
		ext, _, err := Validate(mut, pol)
		if err != nil {
			continue
		}
		accepted++
		// Accepted mutant: it must still be safe — run it on the
		// abstract machine under the precondition.
		s := tableState(1, 10)
		if _, err := ext.RunChecked(s, 1000); err != nil {
			t.Fatalf("tampered code at offset %d validated yet unsafe: %v", off, err)
		}
	}
	if accepted > 3 {
		t.Errorf("suspiciously many accepted mutants: %d", accepted)
	}
}

func TestTamperedProofRejected(t *testing.T) {
	pol := ResourceAccessPolicy()
	cert, err := Certify(resourceSrc, pol, nil)
	if err != nil {
		t.Fatal(err)
	}
	lay := cert.Layout
	rejected, total := 0, 0
	for off := lay.ProofOff; off < lay.ProofOff+lay.ProofLen; off += 3 {
		mut := append([]byte(nil), cert.Binary...)
		mut[off] ^= 0xff
		total++
		if _, _, err := Validate(mut, pol); err != nil {
			rejected++
		}
	}
	if rejected != total {
		t.Errorf("only %d/%d proof mutations rejected", rejected, total)
	}
}

func TestWrongPolicyRejected(t *testing.T) {
	cert, err := Certify(resourceSrc, ResourceAccessPolicy(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Validate(cert.Binary, PacketFilterPolicy()); err == nil {
		t.Fatal("binary accepted under a different policy")
	}
	if _, _, err := Validate(cert.Binary, ResourceAccessPolicy()); err != nil {
		t.Fatalf("binary rejected under its own policy: %v", err)
	}
}

func TestCertifyRejectsUnsafeSource(t *testing.T) {
	unsafe := `
        LDQ  r1, 16(r0)
        RET
	`
	if _, err := Certify(unsafe, ResourceAccessPolicy(), nil); err == nil {
		t.Fatal("unsafe program certified")
	}
}

func TestCertifyRejectsUnknownInvariantLabel(t *testing.T) {
	_, err := Certify("RET", ResourceAccessPolicy(),
		map[string]logic.Pred{"nowhere": logic.True})
	if err == nil || !strings.Contains(err.Error(), "unknown label") {
		t.Fatalf("got %v", err)
	}
}

func TestCertifyLoopThroughBinary(t *testing.T) {
	// A looping program: the invariant rides inside the PCC binary and
	// the consumer uses it to regenerate the VC.
	src := `
        CLR    r4
        CLR    r5
        CMPULT r4, r2, r6
        BEQ    r6, done
loop:   ADDQ   r1, r4, r7
        LDQ    r8, 0(r7)
        ADDQ   r5, r8, r5
        ADDQ   r4, 8, r4
        CMPULT r4, r2, r6
        BNE    r6, loop
done:   MOV    r5, r0
        RET
	`
	inv := logic.Conj(
		logic.All("i", logic.Implies(
			logic.Conj(
				logic.Ult(logic.V("i"), logic.V("r2")),
				logic.Eq(logic.And2(logic.V("i"), logic.C(7)), logic.C(0)),
			),
			logic.RdP(logic.Add(logic.V("r1"), logic.V("i"))),
		)),
		logic.Ne(logic.Bin{Op: logic.OpCmpUlt, L: logic.V("r4"), R: logic.V("r2")}, logic.C(0)),
		logic.Eq(logic.And2(logic.V("r4"), logic.C(7)), logic.C(0)),
	)
	pol := PacketFilterPolicy()
	cert, err := Certify(src, pol, map[string]logic.Pred{"loop": inv})
	if err != nil {
		t.Fatal(err)
	}
	ext, _, err := Validate(cert.Binary, pol)
	if err != nil {
		t.Fatal(err)
	}

	// Execute over a small packet and compare with a direct sum.
	mem := machine.NewMemory()
	pkt := machine.NewRegion("pkt", 0x2000, 64, false)
	var want uint64
	for i := 0; i < 8; i++ {
		pkt.SetWord(i*8, uint64(i*3+1))
		want += uint64(i*3 + 1)
	}
	mem.MustAddRegion(pkt)
	mem.MustAddRegion(machine.NewRegion("scratch", 0x4000, policy.ScratchLen, true))
	s := &machine.State{Mem: mem}
	s.R[policy.RegPacket] = 0x2000
	s.R[policy.RegLen] = 64
	s.R[policy.RegScratch] = 0x4000
	res, err := ext.RunChecked(s, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != want {
		t.Fatalf("sum = %d, want %d", res.Ret, want)
	}
}

func TestUncertifiedCodeWouldCrashKernel(t *testing.T) {
	// The motivation check: run an unsafe program unchecked and observe
	// the wild access the PCC pipeline would have prevented.
	cert, err := Certify(resourceSrc, ResourceAccessPolicy(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ext, _, err := Validate(cert.Binary, ResourceAccessPolicy())
	if err != nil {
		t.Fatal(err)
	}
	s := tableState(1, 5)
	s.R[0] = 0xdead0000 // violate the precondition: bogus table pointer
	_, err = ext.Run(s, 100)
	if err == nil {
		t.Fatal("expected a wild access")
	}
	if !strings.Contains(err.Error(), "WILD") {
		t.Fatalf("expected wild access, got: %v", err)
	}
}

// TestValidationStageBreakdown checks the per-stage cost split that
// the telemetry layer exports: stages are non-negative, the expensive
// stages are actually measured, and they account for the total within
// bookkeeping noise.
func TestValidationStageBreakdown(t *testing.T) {
	pol := policy.PacketFilter()
	cert, err := Certify(filters.Source(filters.Filter4), pol, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := Validate(cert.Binary, pol)
	if err != nil {
		t.Fatal(err)
	}
	if stats.VCGen <= 0 || stats.Check <= 0 {
		t.Errorf("vcgen = %v, check = %v; want both > 0", stats.VCGen, stats.Check)
	}
	if stats.Parse < 0 || stats.SigCheck < 0 {
		t.Errorf("parse = %v, sigcheck = %v; want both >= 0", stats.Parse, stats.SigCheck)
	}
	sum := stats.Parse + stats.SigCheck + stats.VCGen + stats.Check
	if sum > stats.Time {
		t.Errorf("stage sum %v exceeds total %v", sum, stats.Time)
	}
	// The four stages are the whole pipeline; anything else is clock
	// overhead between marks, which must stay small.
	if slack := stats.Time - sum; slack > stats.Time/2 {
		t.Errorf("unattributed time %v is more than half of total %v", slack, stats.Time)
	}
}

func TestCertifyDeterministic(t *testing.T) {
	// Identical inputs must yield byte-identical binaries (so the
	// fingerprinted artifact is reproducible).
	pol := PacketFilterPolicy()
	first, err := Certify(filters.Source(filters.Filter4), pol, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := Certify(filters.Source(filters.Filter4), pol, nil)
		if err != nil {
			t.Fatal(err)
		}
		if string(again.Binary) != string(first.Binary) {
			t.Fatalf("run %d produced a different binary", i)
		}
	}
}
