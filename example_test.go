package pcc_test

// Runnable godoc examples for the public API.

import (
	"fmt"

	pcc "repro"
	"repro/internal/machine"
	"repro/internal/policy"
)

// Example demonstrates the full Figure 1 lifecycle: publish a policy,
// certify an extension, validate the PCC binary, and execute with no
// run-time checks.
func Example() {
	pol := pcc.ResourceAccessPolicy()

	cert, err := pcc.Certify(`
        LDQ   r1, 0(r0)     ; tag
        BEQ   r1, skip      ; read-only entry?
        LDQ   r2, 8(r0)
        ADDQ  r2, 1, r2
        STQ   r2, 8(r0)     ; increment the data word
skip:   RET
	`, pol, nil)
	if err != nil {
		fmt.Println("certification failed:", err)
		return
	}

	ext, _, err := pcc.Validate(cert.Binary, pol)
	if err != nil {
		fmt.Println("validation failed:", err)
		return
	}

	mem := machine.NewMemory()
	entry := machine.NewRegion("table", 0x1000, 16, true)
	entry.SetWord(0, 1)  // tag: writable
	entry.SetWord(8, 41) // data
	mem.MustAddRegion(entry)
	state := &machine.State{Mem: mem}
	state.R[0] = 0x1000

	if _, err := ext.Run(state, 100); err != nil {
		fmt.Println("fault:", err)
		return
	}
	fmt.Println("data:", entry.Word(8))
	// Output: data: 42
}

// ExampleCertify_rejected shows certification refusing an unsafe
// program: the proof simply cannot be constructed.
func ExampleCertify_rejected() {
	_, err := pcc.Certify("STQ r1, 0(r0)\nRET", &policy.Policy{
		Name: "read-only/v1",
		Pre:  pcc.ResourceAccessPolicy().Pre, // no wr(r0) on offer
		Post: pcc.ResourceAccessPolicy().Post,
	}, nil)
	fmt.Println(err != nil)
	// Output: true
}

// ExampleNegotiatePolicy shows the §4 run-time policy negotiation: a
// producer-proposed policy is accepted exactly when the consumer can
// prove its own guarantees cover it.
func ExampleNegotiatePolicy() {
	base := pcc.PacketFilterPolicy()
	weaker := &policy.Policy{
		Name: "first-word-only/v1",
		Pre:  pcc.PacketFilterPolicy().Pre, // same guarantees, fewer demands below
		Post: base.Post,
	}
	fmt.Println(pcc.NegotiatePolicy(base, weaker) == nil)
	// Output: true
}
