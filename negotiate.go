package pcc

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/policy"
	"repro/internal/prover"
	"repro/internal/vcgen"
)

// NegotiatePolicy implements the §4 "negotiate a safety policy at run
// time" direction: a code producer proposes a policy of its own (for
// instance, one with a weaker precondition tailored to a new language
// it wants to ship code in), and the consumer accepts it only after
// determining that the proposed policy implies its own basic notion of
// safety.
//
// Soundness argument: a binary certified under `proposed` is
// guaranteed safe whenever started in a state satisfying proposed.Pre
// and, on termination, establishes proposed.Post. The consumer only
// ever starts extensions in states satisfying base.Pre and relies on
// base.Post afterwards. It is therefore sufficient to prove, with the
// consumer's own prover over the published rules,
//
//	∀state. base.Pre ⇒ proposed.Pre      (the producer may assume less)
//	∀state. proposed.Post ⇒ base.Post    (and must guarantee no less)
//
// On success the consumer may validate binaries against the proposed
// policy; rejection returns the sub-goal the prover got stuck on.
func NegotiatePolicy(base, proposed *policy.Policy) error {
	// Proposed proof rules must be machine-checkable: every schema is
	// vetted against the 64-bit model before the consumer will publish
	// it. Schemas over the uninterpreted rd/wr/sel symbols cannot be
	// machine-vetted and are refused in negotiation (the consumer may
	// still adopt such rules deliberately, outside this protocol).
	if len(proposed.Axioms) > 0 {
		if err := VetAxioms(proposed.Axioms, 20000); err != nil {
			return fmt.Errorf("pcc: negotiation: %w", err)
		}
		for _, sc := range proposed.Axioms {
			if !schemaEvaluable(sc) {
				return fmt.Errorf(
					"pcc: negotiation: axiom %q is not machine-checkable (uninterpreted symbols)",
					sc.Name)
			}
		}
	}
	if err := negotiateImp(base.Pre, proposed.Pre); err != nil {
		return fmt.Errorf("pcc: negotiation: proposed precondition not implied by %q's: %w",
			base.Name, err)
	}
	if err := negotiateImp(proposed.Post, base.Post); err != nil {
		return fmt.Errorf("pcc: negotiation: proposed postcondition does not imply %q's: %w",
			base.Name, err)
	}
	return nil
}

// schemaEvaluable reports whether every part of the schema is
// ground-evaluable (so vetting actually exercised it).
func schemaEvaluable(s *logic.Schema) bool {
	env := map[string]uint64{}
	for _, p := range s.Params {
		env[p] = 1
	}
	if _, ok := logic.EvalPred(s.Concl, env); !ok {
		return false
	}
	for _, prem := range s.Prems {
		if _, ok := logic.EvalPred(prem, env); !ok {
			return false
		}
	}
	return true
}

func negotiateImp(from, to logic.Pred) error {
	goal := logic.NormPred(logic.AllOf(vcgen.RegNames(), logic.Implies(from, to)))
	proof, err := prover.Prove(goal)
	if err != nil {
		return err
	}
	// Belt and braces: re-check the implication proof before trusting
	// the negotiation.
	return prover.Check(proof, goal)
}
