// Packet filter: the §3 experiment in miniature. Certify the paper's
// Filter 4 (TCP packets to port 80), install it in the simulated
// kernel, run it over a synthetic Ethernet trace, and compare its
// verdicts and cost against the BPF interpreter processing the same
// trace.
//
// Run with: go run ./examples/packetfilter
package main

import (
	"fmt"
	"log"

	pcc "repro"
	"repro/internal/bpf"
	"repro/internal/filters"
	"repro/internal/machine"
	"repro/internal/pktgen"
)

func main() {
	log.SetFlags(0)

	pol := pcc.PacketFilterPolicy()
	fmt.Printf("policy %q (%s)\n\n", pol.Name, pol.Convention)

	// Producer side.
	cert, err := pcc.Certify(filters.Source(filters.Filter4), pol, nil)
	if err != nil {
		log.Fatalf("certification failed: %v", err)
	}
	fmt.Printf("certified Filter 4: %d instructions, %d-byte PCC binary\n",
		cert.Instructions, len(cert.Binary))

	// Consumer side.
	ext, stats, err := pcc.Validate(cert.Binary, pol)
	if err != nil {
		log.Fatalf("validation failed: %v", err)
	}
	fmt.Printf("validated in %s — after this, zero run-time checks\n\n", stats.Time)

	// Process a trace with both the PCC extension and the BPF
	// interpreter; they must agree packet for packet.
	const n = 20000
	pkts := pktgen.Generate(n, pktgen.Config{Seed: 42})
	bpfProg := filters.BPFProg(filters.Filter4)
	if err := bpf.Validate(bpfProg); err != nil {
		log.Fatal(err)
	}

	env := filters.Env{}
	var pccCycles, bpfCycles int64
	accepted := 0
	for i, p := range pkts {
		ret, c, err := env.Exec(ext.Prog, p.Data, machine.Unchecked)
		if err != nil {
			log.Fatalf("packet %d: %v", i, err)
		}
		pccCycles += c
		bret, bc := bpf.RunCycles(bpfProg, p.Data, &bpf.DefaultCost)
		bpfCycles += bc
		if (ret != 0) != (bret != 0) {
			log.Fatalf("packet %d: PCC and BPF disagree", i)
		}
		if ret != 0 {
			accepted++
		}
	}

	pccUS := machine.Micros(pccCycles) / n
	bpfUS := machine.Micros(bpfCycles) / n
	fmt.Printf("processed %d packets, %d accepted (PCC and BPF agree on every packet)\n",
		n, accepted)
	fmt.Printf("  PCC: %.2f µs/packet   BPF: %.2f µs/packet   (%.1fx, paper: ~10x)\n",
		pccUS, bpfUS, bpfUS/pccUS)

	// Amortization: after how many packets has the one-time proof
	// validation paid for itself?
	gapUS := bpfUS - pccUS
	crossover := float64(stats.Time.Microseconds()) / gapUS
	fmt.Printf("  validation cost amortized against BPF after ~%.0f packets (paper: 1200)\n",
		crossover)
}
