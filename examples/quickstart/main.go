// Quickstart: the full proof-carrying-code lifecycle of Figure 1 on
// the paper's §2 resource-access example.
//
// A kernel maintains a table of {tag, data} entries and lets user
// processes install native code that may read its entry and may write
// the data word only when the tag is non-zero. The kernel publishes
// that contract as a safety policy; the user certifies its extension
// against it; the kernel validates the proof and then runs the code
// with NO run-time checks.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	pcc "repro"
	"repro/internal/machine"
)

// The Figure 5 extension: increment the data word if it is writable.
const extensionSrc = `
        ADDQ  r0, 8, r1     % Address of data in r1
        LDQ   r0, 8(r0)     % Data in r0 (speculative)
        LDQ   r2, -8(r1)    % Tag in r2
        ADDQ  r0, 1, r0     % Increment data (speculative)
        BEQ   r2, L1        % Skip if tag == 0
        STQ   r0, 0(r1)     % Write back data
L1:     RET
`

func main() {
	log.SetFlags(0)

	// 1. The code consumer (kernel) defines and publishes the policy.
	pol := pcc.ResourceAccessPolicy()
	fmt.Printf("policy %q\n  precondition: %s\n  convention:   %s\n\n",
		pol.Name, pol.Pre, pol.Convention)

	// 2. The untrusted code producer certifies its extension: the
	// assembler computes the safety predicate, the prover proves it,
	// and the PCC binary packages native code + LF proof.
	cert, err := pcc.Certify(extensionSrc, pol, nil)
	if err != nil {
		log.Fatalf("certification failed: %v", err)
	}
	fmt.Printf("producer: certified %d instructions in %s\n",
		cert.Instructions, cert.ProveTime)
	fmt.Printf("  safety predicate: %s\n", cert.SafetyPredicate)
	fmt.Printf("  PCC binary: %s\n\n", cert.Layout)

	// 3. The consumer validates: it recomputes the safety predicate
	// from the shipped machine code alone and typechecks the proof.
	ext, stats, err := pcc.Validate(cert.Binary, pol)
	if err != nil {
		log.Fatalf("validation failed: %v", err)
	}
	fmt.Printf("consumer: VALIDATED in %s (%d LF steps) — one-time cost\n\n",
		stats.Time, stats.CheckSteps)

	// 4. Execute with zero run-time checks, on both a writable and a
	// read-only entry.
	for _, tag := range []uint64{1, 0} {
		mem := machine.NewMemory()
		entry := machine.NewRegion("table", 0x1000, 16, true)
		entry.SetWord(0, tag)
		entry.SetWord(8, 41)
		mem.MustAddRegion(entry)
		s := &machine.State{Mem: mem}
		s.R[0] = 0x1000

		res, err := ext.Run(s, 100)
		if err != nil {
			log.Fatalf("execution fault: %v", err)
		}
		fmt.Printf("ran on {tag:%d, data:41}: data is now %d (%d instructions, %d cycles)\n",
			tag, entry.Word(8), res.Steps, res.Cycles)
	}

	// 5. And the point of it all: a tampered binary is rejected before
	// it can touch the kernel.
	evil := append([]byte(nil), cert.Binary...)
	evil[cert.Layout.CodeOff+9] ^= 0x40 // flip a displacement bit
	if _, _, err := pcc.Validate(evil, pol); err != nil {
		fmt.Printf("\ntampered binary: REJECTED (%v)\n", err)
	} else {
		log.Fatal("tampered binary slipped through!")
	}
}
