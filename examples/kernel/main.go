// Kernel: the whole paper in one running system. A simulated
// extensible kernel publishes its safety policies; four untrusted
// "processes" certify and install packet filters; one process tries to
// install a malicious filter and is rejected; two processes install
// resource-access handlers over their kernel table entries; then the
// kernel dispatches a live packet trace through everything with zero
// run-time checks.
//
// Run with: go run ./examples/kernel
package main

import (
	"fmt"
	"log"

	pcc "repro"
	"repro/internal/filters"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/pktgen"
)

func main() {
	log.SetFlags(0)
	k := kernel.New()
	fmt.Printf("kernel up; published policies: %q, %q\n\n",
		k.FilterPolicy().Name, k.ResourcePolicy().Name)

	// Four processes certify and install the paper's filters.
	for _, f := range filters.All {
		owner := fmt.Sprintf("proc-%d", int(f))
		cert, err := pcc.Certify(filters.Source(f), k.FilterPolicy(), nil)
		if err != nil {
			log.Fatal(err)
		}
		if err := k.InstallFilter(owner, cert.Binary); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: installed %v (%d-byte PCC binary)\n", owner, f, len(cert.Binary))
	}

	// A malicious process tries to install a filter that writes into
	// the packet. It cannot even produce a proof; here it ships a
	// binary whose "proof" is stolen from Filter 1 — the kernel's
	// validator computes the real VC and rejects it.
	good, err := pcc.Certify(filters.Source(filters.Filter1), k.FilterPolicy(), nil)
	if err != nil {
		log.Fatal(err)
	}
	evil := append([]byte(nil), good.Binary...)
	// Patch a code byte: turn a load displacement into another one, so
	// the code differs from what the proof certifies.
	evil[good.Layout.CodeOff+9] ^= 0x08
	if err := k.InstallFilter("mallory", evil); err != nil {
		fmt.Printf("\nmallory: %v\n", err)
	} else {
		log.Fatal("mallory's filter was installed!")
	}

	// Two processes install the §2 resource-access handler.
	handler, err := pcc.Certify(`
        ADDQ  r0, 8, r1
        LDQ   r0, 8(r0)
        LDQ   r2, -8(r1)
        ADDQ  r0, 1, r0
        BEQ   r2, L1
        STQ   r0, 0(r1)
L1:     RET
	`, k.ResourcePolicy(), nil)
	if err != nil {
		log.Fatal(err)
	}
	k.CreateTable(7, 1, 100) // writable
	k.CreateTable(8, 0, 200) // read-only
	for _, pid := range []int{7, 8} {
		if err := k.InstallHandler(pid, handler.Binary); err != nil {
			log.Fatal(err)
		}
		if err := k.InvokeHandler(pid); err != nil {
			log.Fatal(err)
		}
		tag, data, _ := k.Table(pid)
		fmt.Printf("pid %d: handler ran; {tag:%d, data:%d}\n", pid, tag, data)
	}

	// Dispatch a trace through all installed filters.
	const n = 20000
	fmt.Printf("\ndispatching %d packets to %d filters...\n", n, len(k.Owners()))
	for _, p := range pktgen.Generate(n, pktgen.Config{Seed: 1996}) {
		if _, err := k.DeliverPacket(p); err != nil {
			log.Fatal(err)
		}
	}
	st := k.Stats()
	fmt.Printf("done: %d packets, %d validations (%d rejected)\n",
		st.Packets, st.Validations, st.Rejections)
	fmt.Printf("per-owner accepts: %v\n", k.Accepts())
	fmt.Printf("time inside extensions: %.1f ms on the modeled Alpha "+
		"(%.2f µs per packet per filter)\n",
		machine.Micros(st.ExtensionCycles)/1000,
		machine.Micros(st.ExtensionCycles)/float64(st.Packets)/4)
	fmt.Printf("one-time validation cost: %.2f ms host wall-clock for %d binaries\n",
		st.ValidationMicros/1000, st.Validations-st.Rejections)
}
