// Checksum loop (§4): certify a program WITH a loop by shipping its
// loop invariant in the PCC binary's invariant table, then show the
// run-time payoff: the optimized 64-bit routine beats the
// byte-order-style "standard C version" by about 2x — with a formal
// safety guarantee and zero run-time checks.
//
// Run with: go run ./examples/checksum
package main

import (
	"fmt"
	"log"

	pcc "repro"
	"repro/internal/alpha"
	"repro/internal/filters"
	"repro/internal/logic"
	"repro/internal/machine"
	"repro/internal/pktgen"
)

func main() {
	log.SetFlags(0)
	pol := pcc.PacketFilterPolicy()

	// The invariant: the loop offset stays aligned and in bounds, and
	// the packet-read clause of the precondition is carried across
	// iterations. The PCC binary maps the backward-branch target to
	// this predicate, as §4 describes.
	inv := filters.ChecksumInvariant()
	fmt.Printf("loop invariant:\n  %s\n\n", logic.NormPred(inv))

	cert, err := pcc.Certify(filters.SrcChecksum, pol,
		map[string]logic.Pred{"loop": inv})
	if err != nil {
		log.Fatalf("certification failed: %v", err)
	}
	fmt.Printf("certified: %d instructions (8-instruction core loop), %d-byte binary\n",
		cert.Instructions, len(cert.Binary))

	ext, stats, err := pcc.Validate(cert.Binary, pol)
	if err != nil {
		log.Fatalf("validation failed: %v", err)
	}
	fmt.Printf("validated in %s (the paper's looping routine took 3.6 ms)\n\n", stats.Time)

	// Race it against the 32-bit-at-a-time baseline.
	baseline := alpha.MustAssemble(filters.SrcChecksumWord32).Prog
	env := filters.Env{}
	var fast, slow int64
	pkts := pktgen.Generate(1000, pktgen.Config{Seed: 8})
	for i, p := range pkts {
		r1, c1, err := env.Exec(ext.Prog, p.Data, machine.Unchecked)
		if err != nil {
			log.Fatal(err)
		}
		r2, c2, err := env.Exec(baseline, p.Data, machine.Unchecked)
		if err != nil {
			log.Fatal(err)
		}
		if r1 != r2 || uint16(r1) != filters.RefChecksum(p.Data) {
			log.Fatalf("packet %d: checksum mismatch", i)
		}
		fast += c1
		slow += c2
	}
	fmt.Printf("checksummed %d packets, all three implementations agree\n", len(pkts))
	fmt.Printf("  optimized PCC routine: %.2f µs/packet\n",
		machine.Micros(fast)/float64(len(pkts)))
	fmt.Printf("  standard C-style loop: %.2f µs/packet\n",
		machine.Micros(slow)/float64(len(pkts)))
	fmt.Printf("  speedup: %.2fx (paper: 'beating the standard C version ... by a factor of two')\n",
		float64(slow)/float64(fast))
}
