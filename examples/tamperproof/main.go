// Tamper-proofness (§2.3): "If the code is modified, then in all
// likelihood its safety predicate changes, so the given proof will not
// correspond to it. If the proof is modified, then either it will be
// invalid, or else not correspond to the safety predicate."
//
// This example flips every byte of a certified filter's PCC binary in
// turn and classifies what the consumer does with each mutant:
// rejected at parse time, rejected at proof validation, or accepted —
// and for the accepted ones, demonstrates they still respect the
// safety policy by running them on the checking abstract machine.
//
// Run with: go run ./examples/tamperproof
package main

import (
	"fmt"
	"log"

	pcc "repro"
	"repro/internal/filters"
	"repro/internal/machine"
	"repro/internal/pktgen"
)

func main() {
	log.SetFlags(0)
	pol := pcc.PacketFilterPolicy()
	cert, err := pcc.Certify(filters.Source(filters.Filter2), pol, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("certified Filter 2: %d bytes\n", len(cert.Binary))
	fmt.Printf("sections: %s\n\n", cert.Layout)

	pkts := pktgen.Generate(200, pktgen.Config{Seed: 3})
	env := filters.Env{}

	var rejected, accepted, acceptedDifferent int
	for off := 0; off < len(cert.Binary); off++ {
		mutant := append([]byte(nil), cert.Binary...)
		mutant[off] ^= 0x10
		ext, _, err := pcc.Validate(mutant, pol)
		if err != nil {
			rejected++
			continue
		}
		accepted++
		// An accepted mutant must still satisfy the policy: run it on
		// the abstract machine (every rd/wr checked) over the trace.
		behavesDifferently := false
		for _, p := range pkts {
			got, _, err := env.Exec(ext.Prog, p.Data, machine.Checked)
			if err != nil {
				log.Fatalf("UNSOUND: accepted mutant at offset %d faulted: %v", off, err)
			}
			want := filters.Reference(filters.Filter2, p.Data)
			if (got != 0) != want {
				behavesDifferently = true
			}
		}
		if behavesDifferently {
			acceptedDifferent++
		}
	}

	fmt.Printf("byte-flip mutants: %d\n", len(cert.Binary))
	fmt.Printf("  rejected by the consumer:         %d\n", rejected)
	fmt.Printf("  accepted (still provably safe):   %d\n", accepted)
	fmt.Printf("  ... of which behave differently:  %d\n\n", acceptedDifferent)
	fmt.Println("every accepted mutant ran on the checking abstract machine without")
	fmt.Println("a single rd/wr violation — 'tampering can go undetected only if the")
	fmt.Println("adulterated code is still guaranteed to respect the safety policy'")
}
