// Semaphore: the §2 discussion of safety policies beyond memory
// protection — "we could change the tag word in the table entry to be
// a semaphore that the user code must acquire before trying to write
// the data word; furthermore, we could also require (via a simple
// postcondition) that the code releases the semaphore before
// returning."
//
// This example publishes exactly that policy and shows that a
// well-behaved extension certifies while a lock-leaking one — which is
// perfectly memory-safe! — is rejected at certification time, with no
// run-time lock tracking anywhere.
//
// Run with: go run ./examples/semaphore
package main

import (
	"fmt"
	"log"

	pcc "repro"
	"repro/internal/machine"
	"repro/internal/policy"
)

const goodClient = `
        MOV   1, r4
        STQ   r4, 0(r0)     ; acquire the semaphore
        LDQ   r5, 8(r0)
        ADDQ  r5, r5, r5    ; double the protected value
        STQ   r5, 8(r0)
        CLR   r4
        STQ   r4, 0(r0)     ; release before returning
        RET
`

const leakyClient = `
        MOV   1, r4
        STQ   r4, 0(r0)     ; acquire
        LDQ   r5, 8(r0)
        BEQ   r5, out       ; early return on zero payload: LOCK LEAK
        ADDQ  r5, r5, r5
        STQ   r5, 8(r0)
        CLR   r4
        STQ   r4, 0(r0)
out:    RET
`

func main() {
	log.SetFlags(0)
	pol := policy.Semaphore()
	fmt.Printf("policy %q\n  pre:  %s\n  post: %s\n\n", pol.Name, pol.Pre, pol.Post)

	cert, err := pcc.Certify(goodClient, pol, nil)
	if err != nil {
		log.Fatalf("well-behaved client failed to certify: %v", err)
	}
	fmt.Printf("well-behaved client: CERTIFIED (%d-byte binary)\n", len(cert.Binary))

	if _, err := pcc.Certify(leakyClient, pol, nil); err != nil {
		fmt.Printf("lock-leaking client: REJECTED at certification\n  (%v)\n", err)
	} else {
		log.Fatal("lock leaker certified!")
	}

	// The leak is a liveness-of-the-lock property, not a memory-safety
	// one: under the same precondition with a trivial postcondition,
	// the leaky client certifies fine.
	memOnly := &policy.Policy{Name: "semaphore-mem-only/v1", Pre: pol.Pre, Post: pcc.PacketFilterPolicy().Post}
	if _, err := pcc.Certify(leakyClient, memOnly, nil); err != nil {
		log.Fatalf("leaky client is memory-safe but failed: %v", err)
	}
	fmt.Println("\nthe same leaky client IS memory-safe: it certifies once the")
	fmt.Println("release postcondition is dropped — the postcondition alone catches it")

	// Run the good client.
	ext, _, err := pcc.Validate(cert.Binary, pol)
	if err != nil {
		log.Fatal(err)
	}
	mem := machine.NewMemory()
	entry := machine.NewRegion("entry", 0x1000, 16, true)
	entry.SetWord(8, 21)
	mem.MustAddRegion(entry)
	s := &machine.State{Mem: mem}
	s.R[0] = 0x1000
	if _, err := ext.Run(s, 100); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nran the certified client: data 21 -> %d, semaphore = %d (released)\n",
		entry.Word(8), entry.Word(0))
}
