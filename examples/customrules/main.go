// Custom rules: the §3 axiom-learning workflow. The prover gets stuck
// on a program whose safety depends on an arithmetic fact outside the
// core rule set ("when it gets stuck, it requires intervention from
// the programmer, mainly to learn new axioms about arithmetic"). The
// consumer vets the new axiom — fuzzing it against the 64-bit model —
// and publishes it as part of the policy, so it is "remembered" by
// both sides; the binary's rule-set fingerprint keeps everyone honest.
//
// Run with: go run ./examples/customrules
package main

import (
	"fmt"
	"log"

	pcc "repro"
	"repro/internal/logic"
	"repro/internal/policy"
)

// The filter computes a load offset by OR-combining two 8-aligned
// pieces. Perfectly safe — but the core rule set cannot prove that
// (a|b) stays aligned.
const src = `
        CLR    r0
        LDQ    r4, 0(r1)
        AND    r4, 32, r4
        BIS    r4, 8, r4       ; offset = (x & 32) | 8
        CMPULT r4, r2, r5
        BEQ    r5, out
        ADDQ   r1, r4, r6
        LDQ    r0, 0(r6)
out:    RET
`

func main() {
	log.SetFlags(0)

	base := pcc.PacketFilterPolicy()
	if _, err := pcc.Certify(src, base, nil); err != nil {
		fmt.Printf("under the core rules the prover gets stuck:\n  %v\n\n", err)
	} else {
		log.Fatal("expected the core rules to be insufficient")
	}

	// The programmer proposes the missing fact; the consumer vets it
	// (20,000 random 64-bit models) and publishes it with the policy.
	a, b, m := logic.V("$a"), logic.V("$b"), logic.V("$m")
	zero := logic.C(0)
	borAlign := &logic.Schema{
		Name:   "bor_align",
		Params: []string{"$a", "$b", "$m"},
		Prems: []logic.Pred{
			logic.Eq(logic.And2(a, m), zero),
			logic.Eq(logic.And2(b, m), zero),
			logic.Eq(logic.And2(m, logic.Add(m, logic.C(1))), zero),
		},
		Concl:   logic.Eq(logic.And2(logic.Or2(a, b), m), zero),
		Comment: "a,b ≡ 0 mod (m+1), m=2^k−1 ⇒ a|b ≡ 0",
	}
	if err := pcc.VetAxioms([]*logic.Schema{borAlign}, 20000); err != nil {
		log.Fatalf("axiom failed vetting: %v", err)
	}
	fmt.Println("proposed axiom vetted against 20,000 random 64-bit models:")
	fmt.Printf("  %s: %s\n\n", borAlign.Name, borAlign.Comment)

	pol := &policy.Policy{
		Name:       "packet-filter-bor/v1",
		Pre:        base.Pre,
		Post:       base.Post,
		Convention: base.Convention,
		Axioms:     []*logic.Schema{borAlign},
	}
	cert, err := pcc.Certify(src, pol, nil)
	if err != nil {
		log.Fatalf("certification still failed: %v", err)
	}
	fmt.Printf("certified under %q: %d-byte binary\n", pol.Name, len(cert.Binary))

	if _, _, err := pcc.Validate(cert.Binary, pol); err != nil {
		log.Fatal(err)
	}
	fmt.Println("validated: the proof uses bor_align and the consumer's extended signature accepts it")

	// A consumer that never published the axiom refuses the binary
	// before even looking at the proof.
	plain := pcc.PacketFilterPolicy()
	plain.Name = pol.Name
	if _, _, err := pcc.Validate(cert.Binary, plain); err != nil {
		fmt.Printf("\na consumer without the axiom: REJECTED\n  (%v)\n", err)
	} else {
		log.Fatal("rule-set mismatch went unnoticed!")
	}

	// And an unsound "axiom" never gets published in the first place.
	lies := &logic.Schema{
		Name: "wishful", Params: []string{"$a", "$b"},
		Concl: logic.Ult(a, b),
	}
	if err := pcc.VetAxioms([]*logic.Schema{lies}, 20000); err != nil {
		fmt.Printf("\nand an unsound proposal dies at vetting:\n  %v\n", err)
	} else {
		log.Fatal("unsound axiom passed vetting!")
	}
}
