// Resource budgets and typed rejection errors for the validation
// path. The consumer-side checker is the trusted computing base of the
// whole PCC architecture, and it faces fully adversarial input: a
// hostile producer may ship any bytes at all as code or proof. The
// paper's criterion — "the proof checker must be simple and
// trustworthy" — therefore extends past logical soundness to resource
// soundness: a proof bomb, a decoder panic, or a pathological term
// must produce a cheap, well-typed rejection, never a crash, a hang,
// or memory exhaustion. Limits is that contract, and
// docs/ROBUSTNESS.md is its reference page.
package pcc

import (
	"context"
	"errors"
	"fmt"
)

// Limits bounds the resources one Validate/ValidateCtx call may
// consume before the binary is rejected. The zero value of any field
// means "no limit on that axis"; DefaultLimits returns the budgets a
// production consumer should start from (generous enough that every
// legitimate workload in this repository — the four paper filters, the
// IP-checksum loop, the SFI hybrids — validates with an unchanged
// verdict, tight enough that the chaos harness's proof bombs die at
// parse or check time).
type Limits struct {
	// MaxBinaryBytes bounds the whole PCC binary, checked before any
	// parsing.
	MaxBinaryBytes int
	// MaxProofBytes bounds the proof section alone (certificate size is
	// the practical cost an attacker can weaponize).
	MaxProofBytes int
	// MaxTermDepth bounds LF term nesting, both while decoding the
	// binary's proof/invariant terms and while the checker recurses
	// over them.
	MaxTermDepth int
	// MaxTermNodes bounds the total decoded LF term nodes per binary.
	MaxTermNodes int
	// MaxCheckSteps is the LF typechecker's step fuel. DAG-encoded
	// proofs expand to trees during checking, so byte-size limits alone
	// do not bound checking cost — fuel does.
	MaxCheckSteps int
	// MaxVCNodes bounds the size (LF nodes) of the safety predicate
	// recomputed from the shipped code. The VC is derived from the
	// untrusted code, so its size is attacker-influenced even though
	// the generator is trusted.
	MaxVCNodes int
}

// DefaultLimits returns the default validation budgets.
func DefaultLimits() Limits {
	return Limits{
		MaxBinaryBytes: 4 << 20,
		MaxProofBytes:  2 << 20,
		MaxTermDepth:   4096,
		MaxTermNodes:   1 << 22,
		MaxCheckSteps:  1 << 24,
		MaxVCNodes:     1 << 20,
	}
}

// ErrResourceLimit is the sentinel all resource-budget rejections
// match via errors.Is: the binary was rejected not because its proof
// failed, but because checking it within the configured Limits was
// refused.
var ErrResourceLimit = errors.New("pcc: resource limit exceeded")

// ResourceLimitError is a typed resource-budget rejection.
type ResourceLimitError struct {
	// Axis names the exhausted budget (e.g. "binary_bytes",
	// "proof_bytes", "term_depth", "term_nodes", "check_steps",
	// "vc_nodes", "cycle_budget").
	Axis string
	// Actual and Max quantify the violation where known (Actual may be
	// 0 when the underlying stage aborted without an exact count).
	Actual, Max int64
	// Err optionally carries the underlying stage error.
	Err error
}

// Error implements the error interface.
func (e *ResourceLimitError) Error() string {
	if e.Actual > 0 {
		return fmt.Sprintf("pcc: resource limit exceeded: %s %d > %d", e.Axis, e.Actual, e.Max)
	}
	return fmt.Sprintf("pcc: resource limit exceeded: %s (max %d)", e.Axis, e.Max)
}

// Is makes errors.Is(err, ErrResourceLimit) match.
func (e *ResourceLimitError) Is(target error) bool { return target == ErrResourceLimit }

// Unwrap exposes the underlying stage error, if any.
func (e *ResourceLimitError) Unwrap() error { return e.Err }

// PanicError is a validation-stage panic converted into a structured
// rejection by the recover fence around each stage: one malformed blob
// must never take down the consumer. The panic value and stage are
// preserved for the audit trail.
type PanicError struct {
	// Stage names the fenced validation stage that panicked
	// ("decode", "vcgen", or "lfcheck").
	Stage string
	// Value renders the recovered panic value.
	Value string
	// Stack holds a truncated stack trace of the panicking goroutine.
	Stack string
}

// Error implements the error interface.
func (e *PanicError) Error() string {
	return fmt.Sprintf("pcc: validation stage %s panicked: %s", e.Stage, e.Value)
}

// Fence runs f inside the validation recover fence: a panic becomes a
// *PanicError rejection attributed to the named stage. ValidateCtx
// fences its own stages; Fence lets a consumer extend the same
// containment to derived analyses it runs on untrusted extensions
// (the kernel fences its static WCET pass with it).
func Fence(stage string, f func() error) error { return fenced(stage, f) }

// RejectReason classifies a Validate/ValidateCtx error into the
// coarse reject-reason vocabulary the kernel's telemetry counters and
// audit log use: "limit" (resource budget), "deadline" (context
// expiry/cancellation), "panic" (contained stage panic), and "proof"
// (everything else — malformed binary, wrong policy, failed proof).
// A nil error returns "".
func RejectReason(err error) string {
	if err == nil {
		return ""
	}
	var pe *PanicError
	switch {
	case errors.Is(err, ErrResourceLimit):
		return "limit"
	case errors.As(err, &pe):
		return "panic"
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		return "deadline"
	}
	return "proof"
}
