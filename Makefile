# Tier-1 gate plus the race/fuzz hardening layer. `make verify` is the
# single entry point CI and future PRs use.

GO ?= go

.PHONY: build test race verify bench paperbench benchcheck

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

verify:
	sh scripts/verify.sh

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./internal/kernel/ ./...

paperbench:
	$(GO) run ./cmd/paperbench

# Dispatch-performance regression gate. Opt-in from verify with
# BENCHCHECK=1 make verify (it re-measures, so it is not free).
benchcheck:
	sh scripts/benchcheck.sh
